package capture

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"os"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/openflow"
	"repro/internal/wire"
)

// Packet is one Enhanced Packet Block read back from a trace.
type Packet struct {
	Interface int
	Time      core.Time
	Data      []byte
}

// Trace is one parsed pcapng file: the declared interfaces (one per
// emulated session) and every packet in file order.
type Trace struct {
	Path       string
	Interfaces []string
	Packets    []Packet
}

// ReadFile parses one pcapng file.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	tr, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("capture: %s: %w", path, err)
	}
	tr.Path = path
	return tr, nil
}

// Parse walks the pcapng block structure of data: a Section Header
// Block, then Interface Description and Enhanced Packet blocks in any
// order (unknown block types are skipped by length, as the format
// intends). Malformed framing — truncated blocks, mismatched trailing
// lengths, packets on undeclared interfaces — is an error.
func Parse(data []byte) (*Trace, error) {
	tr := &Trace{}
	var bo binary.ByteOrder
	for off := 0; off < len(data); {
		if len(data)-off < 12 {
			return nil, fmt.Errorf("truncated block header at offset %d", off)
		}
		// The SHB's type code is endianness-palindromic; everything else
		// needs the section byte order established by a preceding SHB.
		rawType := binary.LittleEndian.Uint32(data[off : off+4])
		if rawType == blockSHB {
			magic := data[off+8 : off+12]
			switch {
			case binary.LittleEndian.Uint32(magic) == byteOrderMagic:
				bo = binary.LittleEndian
			case binary.BigEndian.Uint32(magic) == byteOrderMagic:
				bo = binary.BigEndian
			default:
				return nil, fmt.Errorf("bad byte-order magic %x at offset %d", magic, off)
			}
		} else if bo == nil {
			return nil, fmt.Errorf("block %#08x before any section header", rawType)
		}
		typ := bo.Uint32(data[off : off+4])
		length := int(bo.Uint32(data[off+4 : off+8]))
		if length < 12 || length%4 != 0 || off+length > len(data) {
			return nil, fmt.Errorf("bad block length %d at offset %d", length, off)
		}
		if trail := int(bo.Uint32(data[off+length-4 : off+length])); trail != length {
			return nil, fmt.Errorf("trailing length %d != leading %d at offset %d", trail, length, off)
		}
		body := data[off+8 : off+length-4]
		switch typ {
		case blockSHB:
			// Section properties were handled above; options ignored.
		case blockIDB:
			if len(body) < 8 {
				return nil, fmt.Errorf("short interface block at offset %d", off)
			}
			name, err := idbName(bo, body[8:])
			if err != nil {
				return nil, fmt.Errorf("interface block at offset %d: %w", off, err)
			}
			tr.Interfaces = append(tr.Interfaces, name)
		case blockEPB:
			if len(body) < 20 {
				return nil, fmt.Errorf("short packet block at offset %d", off)
			}
			iface := int(bo.Uint32(body[0:4]))
			if iface >= len(tr.Interfaces) {
				return nil, fmt.Errorf("packet on undeclared interface %d at offset %d", iface, off)
			}
			ts := core.Time(uint64(bo.Uint32(body[4:8]))<<32 | uint64(bo.Uint32(body[8:12])))
			capLen := int(bo.Uint32(body[12:16]))
			if capLen < 0 || 20+capLen > len(body) {
				return nil, fmt.Errorf("bad captured length %d at offset %d", capLen, off)
			}
			tr.Packets = append(tr.Packets, Packet{
				Interface: iface,
				Time:      ts,
				Data:      append([]byte(nil), body[20:20+capLen]...),
			})
		}
		off += length
	}
	if len(tr.Interfaces) == 0 && len(tr.Packets) == 0 && bo == nil {
		return nil, fmt.Errorf("no pcapng section header")
	}
	return tr, nil
}

// idbName extracts the if_name option from an IDB's option list.
func idbName(bo binary.ByteOrder, opts []byte) (string, error) {
	for len(opts) >= 4 {
		code := bo.Uint16(opts[0:2])
		olen := int(bo.Uint16(opts[2:4]))
		if code == optEnd {
			return "", nil
		}
		if 4+olen > len(opts) {
			return "", fmt.Errorf("truncated option %d", code)
		}
		if code == optIfName {
			return string(opts[4 : 4+olen]), nil
		}
		opts = opts[4+pad4(olen):]
	}
	return "", nil
}

// Control plane protocol labels the decoder reports.
const (
	ProtoBGP      = "bgp"
	ProtoOpenFlow = "openflow"
)

// Message is one control plane message re-parsed from a trace's TCP
// payload bytes, stamped with the delivery time of the segment that
// completed it.
type Message struct {
	Interface int
	Time      core.Time
	Src, Dst  netip.Addr
	SrcPort   uint16
	DstPort   uint16
	Proto     string // ProtoBGP or ProtoOpenFlow
	Type      string // "UPDATE", "KEEPALIVE", "FLOW_MOD", ...
	// Announced and Withdrawn count NLRI in a BGP UPDATE (one UPDATE
	// can both announce and withdraw).
	Announced int
	Withdrawn int
	Len       int
}

// stream reassembles one TCP direction of one session.
type stream struct {
	expect  uint32 // next expected sequence number
	started bool
	buf     []byte
	proto   string
	msg     *Message // template carrying addressing for extracted messages
}

// streamKey identifies one direction of one synthesized conversation.
type streamKey struct {
	iface            int
	src, dst         netip.Addr
	srcPort, dstPort uint16
}

// Decode re-parses every control plane message in the trace: it walks
// the synthesized Ethernet/IPv4/TCP framing, verifies per-direction
// sequence continuity (a discontinuity means the writer corrupted the
// stream and is an error), reassembles the byte streams, and decodes
// them as BGP (a port is 179) or OpenFlow (a port is 6633).
func Decode(tr *Trace) ([]Message, error) {
	streams := make(map[streamKey]*stream)
	var out []Message
	for i, pkt := range tr.Packets {
		_, rest, err := wire.DecodeEthernet(pkt.Data)
		if err != nil {
			return nil, fmt.Errorf("packet %d: %w", i, err)
		}
		ip, rest, err := wire.DecodeIPv4(rest)
		if err != nil {
			return nil, fmt.Errorf("packet %d: %w", i, err)
		}
		if ip.Protocol != core.ProtoTCP {
			return nil, fmt.Errorf("packet %d: protocol %d, want TCP", i, ip.Protocol)
		}
		tcp, payload, err := wire.DecodeTCP(rest)
		if err != nil {
			return nil, fmt.Errorf("packet %d: %w", i, err)
		}
		key := streamKey{iface: pkt.Interface, src: ip.Src, dst: ip.Dst, srcPort: tcp.SrcPort, dstPort: tcp.DstPort}
		st := streams[key]
		if st == nil {
			proto := ""
			switch {
			case tcp.SrcPort == PortBGP || tcp.DstPort == PortBGP:
				proto = ProtoBGP
			case tcp.SrcPort == PortOpenFlow || tcp.DstPort == PortOpenFlow:
				proto = ProtoOpenFlow
			default:
				return nil, fmt.Errorf("packet %d: no control plane port in %d->%d", i, tcp.SrcPort, tcp.DstPort)
			}
			st = &stream{proto: proto, msg: &Message{
				Interface: pkt.Interface,
				Src:       ip.Src, Dst: ip.Dst,
				SrcPort: tcp.SrcPort, DstPort: tcp.DstPort,
				Proto: proto,
			}}
			streams[key] = st
		}
		if tcp.Flags&wire.TCPSyn != 0 {
			st.expect = tcp.Seq + 1
			st.started = true
			continue
		}
		if len(payload) == 0 {
			continue
		}
		if !st.started {
			st.expect = tcp.Seq
			st.started = true
		}
		if tcp.Seq != st.expect {
			return nil, fmt.Errorf("packet %d: TCP seq %d, want %d (%v:%d -> %v:%d)",
				i, tcp.Seq, st.expect, ip.Src, tcp.SrcPort, ip.Dst, tcp.DstPort)
		}
		st.expect += uint32(len(payload))
		st.buf = append(st.buf, payload...)
		msgs, err := st.extract(pkt.Time)
		if err != nil {
			return nil, fmt.Errorf("packet %d: %w", i, err)
		}
		out = append(out, msgs...)
	}
	return out, nil
}

// extract pulls every complete control plane message off the stream
// buffer, stamping each with the completing segment's delivery time.
func (st *stream) extract(at core.Time) ([]Message, error) {
	var out []Message
	for {
		m, n, err := st.peel()
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		m.Time = at
		m.Len = n
		out = append(out, m)
		st.buf = st.buf[n:]
	}
}

// peel decodes one message from the front of the buffer, returning its
// length (0 when the buffer holds no complete message yet).
func (st *stream) peel() (Message, int, error) {
	m := *st.msg
	switch st.proto {
	case ProtoBGP:
		const hdr = 19
		if len(st.buf) < hdr {
			return m, 0, nil
		}
		n := int(binary.BigEndian.Uint16(st.buf[16:18]))
		if n < hdr {
			return m, 0, fmt.Errorf("bgp length %d below header size", n)
		}
		if len(st.buf) < n {
			return m, 0, nil
		}
		msg, err := bgp.Decode(st.buf[:n])
		if err != nil {
			return m, 0, fmt.Errorf("bgp decode: %w", err)
		}
		switch msg.Type {
		case bgp.MsgOpen:
			m.Type = "OPEN"
		case bgp.MsgKeepalive:
			m.Type = "KEEPALIVE"
		case bgp.MsgNotification:
			m.Type = "NOTIFICATION"
		case bgp.MsgUpdate:
			m.Type = "UPDATE"
			m.Announced = len(msg.Upd.NLRI)
			m.Withdrawn = len(msg.Upd.Withdrawn)
		}
		return m, n, nil
	case ProtoOpenFlow:
		h, err := openflow.DecodeHeader(st.buf)
		if err != nil {
			if len(st.buf) < 8 {
				return m, 0, nil
			}
			return m, 0, fmt.Errorf("openflow decode: %w", err)
		}
		if len(st.buf) < int(h.Length) {
			return m, 0, nil
		}
		m.Type = ofTypeName(h.Type)
		return m, int(h.Length), nil
	}
	return m, 0, fmt.Errorf("unknown stream protocol %q", st.proto)
}

// ofTypeName maps OpenFlow 1.0 message types to Wireshark-style names.
func ofTypeName(t uint8) string {
	switch t {
	case openflow.TypeHello:
		return "HELLO"
	case openflow.TypeError:
		return "ERROR"
	case openflow.TypeEchoRequest:
		return "ECHO_REQUEST"
	case openflow.TypeEchoReply:
		return "ECHO_REPLY"
	case openflow.TypeVendor:
		return "VENDOR"
	case openflow.TypeFeaturesRequest:
		return "FEATURES_REQUEST"
	case openflow.TypeFeaturesReply:
		return "FEATURES_REPLY"
	case openflow.TypePacketIn:
		return "PACKET_IN"
	case openflow.TypeFlowRemoved:
		return "FLOW_REMOVED"
	case openflow.TypePortStatus:
		return "PORT_STATUS"
	case openflow.TypePacketOut:
		return "PACKET_OUT"
	case openflow.TypeFlowMod:
		return "FLOW_MOD"
	case openflow.TypeStatsRequest:
		return "STATS_REQUEST"
	case openflow.TypeStatsReply:
		return "STATS_REPLY"
	case openflow.TypeBarrierRequest:
		return "BARRIER_REQUEST"
	case openflow.TypeBarrierReply:
		return "BARRIER_REPLY"
	default:
		return fmt.Sprintf("TYPE_%d", t)
	}
}

// Validate fully checks one trace: block structure (already enforced by
// Parse), strictly non-decreasing delivery timestamps in file order, TCP
// sequence continuity, and decodability of every completed payload
// message. It returns the decoded messages so callers can assert on
// content too.
func Validate(tr *Trace) ([]Message, error) {
	for i := 1; i < len(tr.Packets); i++ {
		if tr.Packets[i].Time < tr.Packets[i-1].Time {
			return nil, fmt.Errorf("%s: packet %d at %v is earlier than packet %d at %v",
				tr.Path, i, tr.Packets[i].Time, i-1, tr.Packets[i-1].Time)
		}
	}
	msgs, err := Decode(tr)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", tr.Path, err)
	}
	return msgs, nil
}
