// Package netmodel glues the simulated data plane together: it owns the
// per-node forwarding state (router FIBs, OpenFlow tables), routes fluid
// flows across the topology, maintains port counters, and punts
// table-misses to the emulated controller as PACKET_IN events.
//
// It corresponds to the "Simulated Data Plane" box of the paper's Figure 2
// (topology, per-node models, network statistics and state).
package netmodel

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fib"
	"repro/internal/flowtable"
	"repro/internal/fluid"
	"repro/internal/topo"
)

// maxHops bounds path walks; anything longer is a forwarding loop.
const maxHops = 64

// PacketIn describes a table-miss punted to the controller.
type PacketIn struct {
	Node   core.NodeID
	InPort core.PortID
	Tuple  core.FiveTuple
}

// Network is the simulated data plane. Not safe for concurrent use; all
// access happens on the simulation engine goroutine.
type Network struct {
	G      *topo.Graph
	Flows  *fluid.Set
	fibs   map[core.NodeID]*fib.Table
	tables map[core.NodeID]*flowtable.Table

	// comps is the incremental connected-component index over live
	// links, maintained through SetCableState/SetNodeState and consumed
	// by the fluid solver to shard dirty regions by topology partition.
	comps *topo.Components

	// OnPacketIn, when set, receives table-miss punts (the Connection
	// Manager forwards them to the emulated controller as real
	// PACKET_IN messages). If nil, misses blackhole the flow.
	OnPacketIn func(PacketIn)

	// OnFlowRemoved, when set, observes flow table entries that expired
	// (idle or hard timeout).
	OnFlowRemoved func(node core.NodeID, e *flowtable.Entry)

	// punted deduplicates outstanding PACKET_INs per (node, tuple) so a
	// pending flow does not re-punt on every reroute.
	punted map[puntKey]bool

	// rxDrop counts flows blackholed for lack of forwarding state.
	rxDrop uint64

	// AutoReroute controls whether forwarding-state mutations reroute
	// flows immediately (default). The Connection Manager disables it
	// during control plane storms and coalesces reroutes with
	// FlushReroutes — a BGP convergence burst at fat-tree k=8 installs
	// tens of thousands of routes, and rerouting every flow after each
	// one is quadratic.
	AutoReroute bool

	rerouteNeeded bool
	reroutes      uint64

	// Reused hot-path scratch (engine-goroutine only, like everything
	// else here): route() appends the walked path into pathBuf, the
	// reroute pass snapshots flows into flowBuf, and RxRateByDst refills
	// rxByDst — none of them allocate in steady state.
	pathBuf []core.LinkID
	flowBuf []fluid.Flow
	rxByDst map[core.NodeID]core.Rate
}

type puntKey struct {
	node  core.NodeID
	tuple core.FiveTuple
}

// New builds the data plane for a topology: a FIB per router, a flow
// table per switch, and a fluid flow set sized by the links' rates.
func New(g *topo.Graph) *Network {
	n := &Network{
		G:           g,
		fibs:        make(map[core.NodeID]*fib.Table),
		tables:      make(map[core.NodeID]*flowtable.Table),
		punted:      make(map[puntKey]bool),
		AutoReroute: true,
	}
	for _, node := range g.Nodes {
		switch node.Kind {
		case topo.Router:
			n.fibs[node.ID] = fib.New()
		case topo.Switch:
			n.tables[node.ID] = flowtable.New()
		}
	}
	n.Flows = fluid.NewSet(func(l core.LinkID) core.Rate { return n.effectiveRate(l) })
	n.Flows.SetDelayOf(func(l core.LinkID) core.Time {
		if link := g.Link(l); link != nil {
			return link.Delay
		}
		return 0
	})
	n.comps = topo.NewComponents(g)
	n.Flows.SetShardOf(n.comps.OfLink)
	return n
}

// Components exposes the live-link component index (engine-goroutine
// state, like the FIBs): tests and stats consumers read partition counts
// and labels from it.
func (n *Network) Components() *topo.Components { return n.comps }

// effectiveRate is the capacity a link offers the fluid model: its
// configured rate, or zero while the link (or either endpoint node) is
// down.
func (n *Network) effectiveRate(l core.LinkID) core.Rate {
	link := n.G.Link(l)
	if link == nil || !n.G.LinkAlive(l) {
		return 0
	}
	return link.Rate()
}

// FIB returns the router's forwarding table (nil for non-routers).
func (n *Network) FIB(id core.NodeID) *fib.Table { return n.fibs[id] }

// Table returns the switch's flow table (nil for non-switches).
func (n *Network) Table(id core.NodeID) *flowtable.Table { return n.tables[id] }

// StartFlow routes and activates a flow at virtual time now. If the first
// hop switch punts to the controller, the flow is added in Pending state
// and will come alive on the next successful reroute. The spec's Path and
// State are filled in before it is copied into the flow set (route walks
// into the network's scratch buffer, so the spec gets its own copy).
func (n *Network) StartFlow(f *fluid.Flow, now core.Time) {
	path, status := n.route(f.Src, f.Tuple, now, true)
	switch status {
	case routeOK:
		f.Path = append([]core.LinkID(nil), path...)
		f.State = fluid.Active
	default:
		f.State = fluid.Pending
		f.Path = nil
	}
	n.Flows.Add(f, now)
}

// StopFlow removes a flow, returning its final snapshot (state Done,
// bytes integrated up to now) — the last chance to read its delivered
// byte count. ok is false if the flow did not exist.
func (n *Network) StopFlow(id fluid.FlowID, now core.Time) (final fluid.Flow, ok bool) {
	if f, exists := n.Flows.Flow(id); exists {
		n.clearPunts(f.Tuple)
	}
	return n.Flows.Remove(id, now)
}

type routeStatus int

const (
	routeOK routeStatus = iota
	routePunted
	routeDropped
)

// route walks the topology from src following FIBs and flow tables.
// punt controls whether table-misses may generate PACKET_INs. The
// returned path aliases the network's scratch buffer: it is valid until
// the next route call, and callers that retain it must copy (StartFlow
// does; the reroute pass hands it straight to SetPath, which copies into
// the flow store).
func (n *Network) route(src core.NodeID, ft core.FiveTuple, now core.Time, punt bool) ([]core.LinkID, routeStatus) {
	path, status := n.walkRoute(n.pathBuf[:0], src, ft, now, punt)
	n.pathBuf = path // keep the grown backing
	if status != routeOK {
		return nil, status
	}
	return path, status
}

func (n *Network) walkRoute(path []core.LinkID, src core.NodeID, ft core.FiveTuple, now core.Time, punt bool) ([]core.LinkID, routeStatus) {
	cur := n.G.Node(src)
	if cur == nil {
		return path, routeDropped
	}
	inPort := core.PortNone
	for hops := 0; hops < maxHops; hops++ {
		if cur.Down() {
			// A dead node neither originates, sinks nor forwards.
			n.rxDrop++
			return path, routeDropped
		}
		if cur.Kind == topo.Host {
			if cur.IP == ft.Dst {
				return path, routeOK // delivered
			}
			if hops > 0 {
				// Arrived at the wrong host: drop.
				n.rxDrop++
				return path, routeDropped
			}
			// Source host: single homed, forward up its only link.
			if len(cur.Ports) == 0 {
				return path, routeDropped
			}
			p := cur.Ports[0]
			if !n.G.LinkAlive(p.Link) {
				n.rxDrop++
				return path, routeDropped
			}
			path = append(path, p.Link)
			inPort = p.PeerPort
			cur = n.G.Node(p.Peer)
			continue
		}
		egress, status := n.forwardAt(cur, inPort, ft, now, punt)
		if status != routeOK {
			return path, status
		}
		p := n.G.Port(cur.ID, egress)
		if p == nil {
			return path, routeDropped
		}
		if !n.G.LinkAlive(p.Link) {
			// Forwarding state still points into a dead link (e.g. a
			// select group whose hash lands on a failed member): the flow
			// blackholes until the control plane repairs the state.
			n.rxDrop++
			return path, routeDropped
		}
		path = append(path, p.Link)
		inPort = p.PeerPort
		cur = n.G.Node(p.Peer)
	}
	// Forwarding loop.
	n.rxDrop++
	return path, routeDropped
}

// forwardAt decides the egress port of ft at a forwarding node.
func (n *Network) forwardAt(node *topo.Node, inPort core.PortID, ft core.FiveTuple, now core.Time, punt bool) (core.PortID, routeStatus) {
	switch node.Kind {
	case topo.Router:
		t := n.fibs[node.ID]
		// BGP ECMP hashes source and destination IP, per the demo.
		nh, ok := t.LookupHash(ft.Dst, ft.HashSrcDst())
		if !ok {
			n.rxDrop++
			return core.PortNone, routeDropped
		}
		return nh.Port, routeOK
	case topo.Switch:
		t := n.tables[node.ID]
		e, ok := t.Lookup(inPort, ft)
		if !ok {
			if t.MissToController && punt {
				n.punt(node.ID, inPort, ft)
				return core.PortNone, routePunted
			}
			n.rxDrop++
			return core.PortNone, routeDropped
		}
		e.LastUsed = now
		for _, a := range e.Actions {
			switch a.Type {
			case flowtable.ActionOutput:
				return a.Port, routeOK
			case flowtable.ActionSelectGroup:
				if len(a.Group) == 0 {
					return core.PortNone, routeDropped
				}
				// 5-tuple hash select, salted per node so that
				// consecutive hops make independent choices.
				h := ft.Hash() ^ uint32(node.ID)*0x9E3779B9
				return a.Group[int(h%uint32(len(a.Group)))], routeOK
			case flowtable.ActionController:
				if punt {
					n.punt(node.ID, inPort, ft)
					return core.PortNone, routePunted
				}
				return core.PortNone, routeDropped
			case flowtable.ActionDrop:
				return core.PortNone, routeDropped
			}
		}
		return core.PortNone, routeDropped
	default:
		return core.PortNone, routeDropped
	}
}

func (n *Network) punt(node core.NodeID, inPort core.PortID, ft core.FiveTuple) {
	key := puntKey{node: node, tuple: ft}
	if n.punted[key] {
		return
	}
	n.punted[key] = true
	if n.OnPacketIn != nil {
		n.OnPacketIn(PacketIn{Node: node, InPort: inPort, Tuple: ft})
	}
}

func (n *Network) clearPunts(ft core.FiveTuple) {
	for k := range n.punted {
		if k.tuple == ft {
			delete(n.punted, k)
		}
	}
}

// ReRouteAll recomputes the path of every live flow after forwarding
// state changed (FIB install, FLOW_MOD, expiry). Pending flows whose
// forwarding state is now complete become active; active flows whose
// state disappeared become pending again. The whole pass runs as one
// deferred solver batch: a convergence burst that re-paths thousands of
// flows pays for a single rate solve instead of one per SetPath.
func (n *Network) ReRouteAll(now core.Time) {
	n.reroutes++
	n.Flows.Defer()
	defer n.Flows.Resume(now)
	// Snapshot the flow list into the reused buffer (SetPath mutates the
	// store mid-iteration); PathEqual compares against the stored route
	// without copying it out.
	n.flowBuf = n.Flows.AppendFlows(n.flowBuf[:0])
	for _, f := range n.flowBuf {
		path, status := n.route(f.Src, f.Tuple, now, true)
		switch status {
		case routeOK:
			n.clearPunts(f.Tuple)
			if f.State != fluid.Active || !n.Flows.PathEqual(f.ID, path) {
				n.Flows.SetPath(f.ID, path, now)
			}
		default:
			if f.State == fluid.Active {
				n.Flows.SetPath(f.ID, nil, now)
			}
		}
	}
}

// maybeReroute reroutes immediately in AutoReroute mode, otherwise marks
// the network dirty for the next FlushReroutes.
func (n *Network) maybeReroute(now core.Time) {
	if n.AutoReroute {
		n.ReRouteAll(now)
		return
	}
	n.rerouteNeeded = true
}

// FlushReroutes recomputes flow paths if any forwarding state changed
// since the last flush. It reports whether a reroute ran.
func (n *Network) FlushReroutes(now core.Time) bool {
	if !n.rerouteNeeded {
		return false
	}
	n.rerouteNeeded = false
	n.ReRouteAll(now)
	return true
}

// Reroutes reports how many full reroute passes have run.
func (n *Network) Reroutes() uint64 { return n.reroutes }

// RxRateByDst reports the current receive rate per destination host,
// integrated up to now. The returned map is owned by the network and
// refilled on every call — the sampling tick reads it each interval
// without a per-tick allocation; callers must not retain it.
func (n *Network) RxRateByDst(now core.Time) map[core.NodeID]core.Rate {
	n.Flows.Integrate(now)
	n.rxByDst = n.Flows.RxRateByDst(n.rxByDst)
	return n.rxByDst
}

// ---------------------------------------------------------------------------
// Failure & dynamics injection
// ---------------------------------------------------------------------------

// SetCableState fails (down=true) or restores (down=false) the cable
// containing the directed link ab, applying the data plane consequences
// in one batch:
//
//   - both directions' effective capacity drops to zero / returns to the
//     configured rate (a single dirty-region solve via fluid.SetCapacity);
//   - on failure, the adjacent nodes' forwarding state over the dead
//     cable is invalidated: routers prune FIB next hops through the dead
//     port (kernel-style interface-down cleanup), switches drop
//     exact/output entries into it (their flows re-punt to the
//     controller for repair);
//   - flows are rerouted (immediately, or on the next FlushReroutes when
//     the Connection Manager coalesces).
//
// Control plane notifications (BGP session teardown, OpenFlow
// PORT_STATUS) are the Connection Manager's job, layered on top. It
// reports whether the cable state actually changed.
func (n *Network) SetCableState(ab core.LinkID, down bool, now core.Time) bool {
	l := n.G.Link(ab)
	if l == nil {
		return false
	}
	rev := n.G.Link(l.Reverse)
	if l.Down() == down && rev.Down() == down {
		return false
	}
	l.SetDown(down)
	rev.SetDown(down)
	// Update the partition index before seeding the fluid layer so the
	// dirtied links are bucketed under their post-change labels.
	n.comps.OnCableState(l.ID)
	n.Flows.Defer()
	n.Flows.SetCapacity(l.ID, n.effectiveRate(l.ID), now)
	n.Flows.SetCapacity(rev.ID, n.effectiveRate(rev.ID), now)
	if down {
		n.invalidatePort(l.From, l.FromPort)
		n.invalidatePort(rev.From, rev.FromPort)
	}
	n.Flows.Resume(now)
	n.maybeReroute(now)
	return true
}

// SetCableRate changes the capacity of both directions of the cable
// containing ab — the "explicit reaction to capacity change" experiment
// class. Paths are unaffected; only allocations re-solve (confined to
// the dirty region around the cable).
func (n *Network) SetCableRate(ab core.LinkID, rate core.Rate, now core.Time) {
	l := n.G.Link(ab)
	if l == nil || rate < 0 {
		return
	}
	rev := n.G.Link(l.Reverse)
	l.SetRate(rate)
	rev.SetRate(rate)
	n.Flows.Defer()
	n.Flows.SetCapacity(l.ID, n.effectiveRate(l.ID), now)
	n.Flows.SetCapacity(rev.ID, n.effectiveRate(rev.ID), now)
	n.Flows.Resume(now)
}

// SetNodeState fails or restores a node itself. The caller (the
// Connection Manager) is responsible for also failing/restoring the
// node's cables so sessions reset and PORT_STATUS fires; this method
// only flips the node flag and refreshes adjacent capacities so the
// fluid layer agrees with LinkAlive.
func (n *Network) SetNodeState(id core.NodeID, down bool, now core.Time) bool {
	node := n.G.Node(id)
	if node == nil || node.Down() == down {
		return false
	}
	node.SetDown(down)
	n.comps.OnNodeState(id)
	n.Flows.Defer()
	for _, p := range node.Ports {
		l := n.G.Link(p.Link)
		n.Flows.SetCapacity(l.ID, n.effectiveRate(l.ID), now)
		n.Flows.SetCapacity(l.Reverse, n.effectiveRate(l.Reverse), now)
	}
	n.Flows.Resume(now)
	n.maybeReroute(now)
	return true
}

// invalidatePort removes forwarding state through a dead port on one
// adjacent node.
func (n *Network) invalidatePort(node core.NodeID, port core.PortID) {
	if t := n.fibs[node]; t != nil {
		t.PrunePort(port)
	}
	if t := n.tables[node]; t != nil {
		for _, e := range t.PrunePort(port) {
			if n.OnFlowRemoved != nil {
				n.OnFlowRemoved(node, e)
			}
		}
	}
}

// InstallRoute installs (or replaces) a route in a router's FIB and
// reroutes. Called by the Connection Manager when the emulated BGP daemon
// updates its RIB.
func (n *Network) InstallRoute(node core.NodeID, r fib.Route, now core.Time) error {
	t := n.fibs[node]
	if t == nil {
		return fmt.Errorf("netmodel: %v is not a router", node)
	}
	if err := t.Insert(r.Prefix, r.NextHops); err != nil {
		return err
	}
	n.maybeReroute(now)
	return nil
}

// WithdrawRoute removes a route from a router's FIB and reroutes.
func (n *Network) WithdrawRoute(node core.NodeID, r fib.Route, now core.Time) error {
	t := n.fibs[node]
	if t == nil {
		return fmt.Errorf("netmodel: %v is not a router", node)
	}
	t.Remove(r.Prefix)
	n.maybeReroute(now)
	return nil
}

// ApplyFlowMod applies an OpenFlow table change to a switch and reroutes.
type FlowModKind int

const (
	FlowModAdd FlowModKind = iota
	FlowModModify
	FlowModDelete
	FlowModDeleteStrict
)

// FlowMod is the data-plane-facing form of an OpenFlow FLOW_MOD.
type FlowMod struct {
	Kind  FlowModKind
	Entry flowtable.Entry
}

// ApplyFlowMod mutates a switch's table per the mod and reroutes.
func (n *Network) ApplyFlowMod(node core.NodeID, mod FlowMod, now core.Time) error {
	t := n.tables[node]
	if t == nil {
		return fmt.Errorf("netmodel: %v is not a switch", node)
	}
	switch mod.Kind {
	case FlowModAdd:
		t.Add(mod.Entry, now)
	case FlowModModify:
		t.Modify(mod.Entry, now, true)
	case FlowModDelete:
		t.Delete(mod.Entry.Match)
	case FlowModDeleteStrict:
		t.DeleteStrict(mod.Entry.Match, mod.Entry.Priority)
	}
	n.maybeReroute(now)
	return nil
}

// ExpireFlowEntries removes timed-out entries on every switch, fires
// OnFlowRemoved, and reroutes if anything expired. Returns the count.
func (n *Network) ExpireFlowEntries(now core.Time) int {
	total := 0
	for id, t := range n.tables {
		for _, e := range t.ExpireDue(now) {
			total++
			if n.OnFlowRemoved != nil {
				n.OnFlowRemoved(id, e)
			}
		}
	}
	if total > 0 {
		n.ReRouteAll(now)
	}
	return total
}

// PortStats are the OpenFlow-style counters of one port.
type PortStats struct {
	Port    core.PortID
	TxBytes uint64
	RxBytes uint64
	TxRate  core.Rate // instantaneous
	RxRate  core.Rate
}

// PortStatsOf reports counters for every port of a node at virtual time
// now. The emulated OpenFlow agent answers PORT_STATS requests with this.
func (n *Network) PortStatsOf(node core.NodeID, now core.Time) []PortStats {
	nd := n.G.Node(node)
	if nd == nil {
		return nil
	}
	n.Flows.Integrate(now)
	out := make([]PortStats, 0, len(nd.Ports))
	for _, p := range nd.Ports {
		l := n.G.Link(p.Link)
		st := PortStats{Port: p.ID}
		if l != nil {
			st.TxBytes = n.Flows.LinkBytes(l.ID)
			st.TxRate = n.Flows.LinkRate(l.ID)
			st.RxBytes = n.Flows.LinkBytes(l.Reverse)
			st.RxRate = n.Flows.LinkRate(l.Reverse)
		}
		out = append(out, st)
	}
	return out
}

// FlowStat is an OpenFlow-style flow entry statistic.
type FlowStat struct {
	Priority  uint16
	Match     flowtable.Match
	Bytes     uint64
	Installed core.Time
}

// FlowStatsOf reports per-entry byte counts for a switch: for each entry,
// the delivered bytes of the live flows it currently matches (first-match
// semantics). Hedera's demand estimation polls this every 5 seconds.
func (n *Network) FlowStatsOf(node core.NodeID, now core.Time) []FlowStat {
	t := n.tables[node]
	if t == nil {
		return nil
	}
	n.Flows.Integrate(now)
	entries := t.Entries()
	out := make([]FlowStat, 0, len(entries))
	slot := make(map[*flowtable.Entry]int, len(entries))
	for i, e := range entries {
		out = append(out, FlowStat{Priority: e.Priority, Match: e.Match, Installed: e.InstalledAt, Bytes: e.Bytes})
		slot[e] = i
	}
	// One pass over the flows (instead of one per entry): each active
	// flow crossing the node charges its bytes to the entry that wins its
	// lookup (first-match semantics, as the old per-entry scan had).
	n.flowBuf = n.Flows.AppendFlows(n.flowBuf[:0])
	for _, f := range n.flowBuf {
		if f.State != fluid.Active {
			continue
		}
		n.pathBuf = n.Flows.AppendPath(n.pathBuf[:0], f.ID)
		inPort, crosses := n.ingressAt(node, n.pathBuf)
		if !crosses {
			continue
		}
		if winner, ok := t.Lookup(inPort, f.Tuple); ok {
			if i, tracked := slot[winner]; tracked {
				out[i].Bytes += f.Bytes
			}
		}
	}
	return out
}

// ingressAt reports the port through which a flow following path enters
// node, if the path crosses it.
func (n *Network) ingressAt(node core.NodeID, path []core.LinkID) (core.PortID, bool) {
	for _, lid := range path {
		l := n.G.Link(lid)
		if l != nil && l.To == node {
			return l.ToPort, true
		}
	}
	return core.PortNone, false
}

// Drops reports how many route walks ended in a blackhole so far.
func (n *Network) Drops() uint64 { return n.rxDrop }

// HostIDs returns the NodeIDs of all hosts in ID order.
func (n *Network) HostIDs() []core.NodeID {
	hosts := n.G.Hosts()
	out := make([]core.NodeID, len(hosts))
	for i, h := range hosts {
		out[i] = h.ID
	}
	return out
}
