package netmodel

import (
	"net/netip"
	"testing"

	"repro/internal/core"
	"repro/internal/fib"
	"repro/internal/flowtable"
	"repro/internal/fluid"
	"repro/internal/topo"
)

// starNet builds a 4-host star with an OpenFlow switch center.
func starNet(t *testing.T) (*Network, *topo.Graph) {
	t.Helper()
	g, err := topo.Star(4, topo.Switch, 1*core.Gbps, 0)
	if err != nil {
		t.Fatal(err)
	}
	return New(g), g
}

// routerNet builds the two-router Figure 1 topology.
func routerNet(t *testing.T) (*Network, *topo.Graph) {
	t.Helper()
	g, err := topo.TwoRouters(1*core.Gbps, 0)
	if err != nil {
		t.Fatal(err)
	}
	return New(g), g
}

func hostTuple(g *topo.Graph, src, dst string) (core.FiveTuple, core.NodeID, core.NodeID) {
	s, _ := g.NodeByName(src)
	d, _ := g.NodeByName(dst)
	return core.FiveTuple{Src: s.IP, Dst: d.IP, Proto: core.ProtoUDP, SrcPort: 5000, DstPort: 5001}, s.ID, d.ID
}

func TestSwitchMissPuntsPacketIn(t *testing.T) {
	n, g := starNet(t)
	var punts []PacketIn
	n.OnPacketIn = func(p PacketIn) { punts = append(punts, p) }

	ft, src, dst := hostTuple(g, "h0", "h1")
	f := &fluid.Flow{ID: 1, Tuple: ft, Src: src, Dst: dst, Demand: core.Gbps}
	n.StartFlow(f, 0)

	if f.State != fluid.Pending {
		t.Fatalf("flow state = %v, want pending", f.State)
	}
	if len(punts) != 1 {
		t.Fatalf("punts = %d, want 1", len(punts))
	}
	sw, _ := g.NodeByName("s0")
	if punts[0].Node != sw.ID || punts[0].Tuple != ft {
		t.Fatalf("punt = %+v", punts[0])
	}

	// Re-routing without new state must not duplicate the punt.
	n.ReRouteAll(core.Second)
	if len(punts) != 1 {
		t.Fatalf("duplicate punt: %d", len(punts))
	}
}

func TestFlowModActivatesPendingFlow(t *testing.T) {
	n, g := starNet(t)
	n.OnPacketIn = func(PacketIn) {}
	ft, src, dst := hostTuple(g, "h0", "h1")
	f := &fluid.Flow{ID: 1, Tuple: ft, Src: src, Dst: dst, Demand: core.Gbps}
	n.StartFlow(f, 0)

	sw, _ := g.NodeByName("s0")
	h1, _ := g.NodeByName("h1")
	// Find the switch port facing h1.
	var egress core.PortID
	for _, p := range sw.Ports {
		if p.Peer == h1.ID {
			egress = p.ID
		}
	}
	err := n.ApplyFlowMod(sw.ID, FlowMod{Kind: FlowModAdd, Entry: flowtable.Entry{
		Priority: 10,
		Match:    flowtable.ExactFlowMatch(ft),
		Actions:  []flowtable.Action{{Type: flowtable.ActionOutput, Port: egress}},
	}}, core.Second)
	if err != nil {
		t.Fatal(err)
	}
	got := flowOf(t, n, 1)
	if got.State != fluid.Active {
		t.Fatalf("state = %v after rule install", got.State)
	}
	if got.Rate != core.Gbps {
		t.Fatalf("rate = %v", got.Rate)
	}
	if path := n.Flows.AppendPath(nil, 1); len(path) != 2 {
		t.Fatalf("path = %v", path)
	}
}

func TestRouterForwardingWithFIB(t *testing.T) {
	n, g := routerNet(t)
	ft, src, dst := hostTuple(g, "h1", "h2")
	r1, _ := g.NodeByName("r1")
	r2, _ := g.NodeByName("r2")
	h2, _ := g.NodeByName("h2")

	// r1: route 10.0.2.0/24 via its r2-facing port.
	var r1ToR2, r2ToH2 core.PortID
	for _, p := range r1.Ports {
		if p.Peer == r2.ID {
			r1ToR2 = p.ID
		}
	}
	for _, p := range r2.Ports {
		if p.Peer == h2.ID {
			r2ToH2 = p.ID
		}
	}
	must(t, n.InstallRoute(r1.ID, fib.Route{
		Prefix:   netip.MustParsePrefix("10.0.2.0/24"),
		NextHops: []fib.NextHop{{Port: r1ToR2, Via: netip.MustParseAddr("172.16.0.1")}},
	}, 0))
	must(t, n.InstallRoute(r2.ID, fib.Route{
		Prefix:   netip.MustParsePrefix("10.0.2.0/24"),
		NextHops: []fib.NextHop{{Port: r2ToH2, Via: h2.IP}},
	}, 0))

	f := &fluid.Flow{ID: 1, Tuple: ft, Src: src, Dst: dst, Demand: 300 * core.Mbps}
	n.StartFlow(f, 0)
	if got := flowOf(t, n, 1); got.State != fluid.Active || got.Rate != 300*core.Mbps {
		t.Fatalf("flow = state %v rate %v", got.State, got.Rate)
	}
	if len(f.Path) != 3 {
		t.Fatalf("path length = %d, want 3 (h1->r1->r2->h2)", len(f.Path))
	}
}

func TestRouterMissDrops(t *testing.T) {
	n, g := routerNet(t)
	ft, src, dst := hostTuple(g, "h1", "h2")
	f := &fluid.Flow{ID: 1, Tuple: ft, Src: src, Dst: dst, Demand: core.Gbps}
	n.StartFlow(f, 0)
	if f.State != fluid.Pending {
		t.Fatalf("unrouted flow state = %v", f.State)
	}
	if n.Drops() == 0 {
		t.Fatal("drop not counted")
	}
}

func TestWithdrawRouteBlackholes(t *testing.T) {
	n, g := routerNet(t)
	ft, src, dst := hostTuple(g, "h1", "h2")
	r1, _ := g.NodeByName("r1")
	r2, _ := g.NodeByName("r2")
	h2, _ := g.NodeByName("h2")
	var r1ToR2, r2ToH2 core.PortID
	for _, p := range r1.Ports {
		if p.Peer == r2.ID {
			r1ToR2 = p.ID
		}
	}
	for _, p := range r2.Ports {
		if p.Peer == h2.ID {
			r2ToH2 = p.ID
		}
	}
	route := fib.Route{Prefix: netip.MustParsePrefix("10.0.2.0/24"),
		NextHops: []fib.NextHop{{Port: r1ToR2, Via: netip.MustParseAddr("172.16.0.1")}}}
	must(t, n.InstallRoute(r1.ID, route, 0))
	must(t, n.InstallRoute(r2.ID, fib.Route{Prefix: netip.MustParsePrefix("10.0.2.0/24"),
		NextHops: []fib.NextHop{{Port: r2ToH2, Via: h2.IP}}}, 0))

	f := &fluid.Flow{ID: 1, Tuple: ft, Src: src, Dst: dst, Demand: core.Gbps}
	n.StartFlow(f, 0)
	if f.State != fluid.Active {
		t.Fatal("flow not active")
	}
	must(t, n.WithdrawRoute(r1.ID, route, core.Second))
	if got := flowOf(t, n, 1); got.State != fluid.Pending || got.Rate != 0 {
		t.Fatalf("after withdraw: state=%v rate=%v", got.State, got.Rate)
	}
}

func TestSelectGroupECMPSpreads(t *testing.T) {
	// A diamond: h0 - s0 - {s1,s2} - s3 - h1, with a select group on s0.
	g := topo.New()
	s0 := g.AddSwitch("s0")
	s1 := g.AddSwitch("s1")
	s2 := g.AddSwitch("s2")
	s3 := g.AddSwitch("s3")
	h0 := g.AddHost("h0")
	h0.IP = netip.MustParseAddr("10.0.0.1")
	h1 := g.AddHost("h1")
	h1.IP = netip.MustParseAddr("10.0.1.1")
	g.Connect(h0, s0, core.Gbps, 0)
	g.Connect(s0, s1, core.Gbps, 0)
	g.Connect(s0, s2, core.Gbps, 0)
	g.Connect(s1, s3, core.Gbps, 0)
	g.Connect(s2, s3, core.Gbps, 0)
	g.Connect(s3, h1, core.Gbps, 0)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	n := New(g)

	// s0: group over its two uplinks; s1, s2, s3: forward toward h1.
	port := func(from, to *topo.Node) core.PortID {
		for _, p := range from.Ports {
			if p.Peer == to.ID {
				return p.ID
			}
		}
		t.Fatalf("no port %s->%s", from.Name, to.Name)
		return 0
	}
	n.Table(s0.ID).Add(flowtable.Entry{Priority: 1, Match: flowtable.MatchAll(),
		Actions: []flowtable.Action{{Type: flowtable.ActionSelectGroup, Group: []core.PortID{port(s0, s1), port(s0, s2)}}}}, 0)
	n.Table(s1.ID).Add(flowtable.Entry{Priority: 1, Match: flowtable.MatchAll(),
		Actions: []flowtable.Action{{Type: flowtable.ActionOutput, Port: port(s1, s3)}}}, 0)
	n.Table(s2.ID).Add(flowtable.Entry{Priority: 1, Match: flowtable.MatchAll(),
		Actions: []flowtable.Action{{Type: flowtable.ActionOutput, Port: port(s2, s3)}}}, 0)
	n.Table(s3.ID).Add(flowtable.Entry{Priority: 1, Match: flowtable.MatchAll(),
		Actions: []flowtable.Action{{Type: flowtable.ActionOutput, Port: port(s3, h1)}}}, 0)

	// Many flows with varying ports: both branches must see traffic.
	viaS1, viaS2 := 0, 0
	for i := 0; i < 64; i++ {
		ft := core.FiveTuple{Src: h0.IP, Dst: h1.IP, Proto: core.ProtoUDP,
			SrcPort: uint16(10000 + i), DstPort: 5001}
		f := &fluid.Flow{ID: fluid.FlowID(i + 1), Tuple: ft, Src: h0.ID, Dst: h1.ID, Demand: core.Mbps}
		n.StartFlow(f, 0)
		if f.State != fluid.Active {
			t.Fatalf("flow %d not active", i)
		}
		for _, lid := range f.Path {
			l := g.Link(lid)
			if l.From == s0.ID && l.To == s1.ID {
				viaS1++
			}
			if l.From == s0.ID && l.To == s2.ID {
				viaS2++
			}
		}
	}
	if viaS1 == 0 || viaS2 == 0 {
		t.Fatalf("select group did not spread: s1=%d s2=%d", viaS1, viaS2)
	}
	if viaS1+viaS2 != 64 {
		t.Fatalf("flows lost: %d", viaS1+viaS2)
	}
}

func TestForwardingLoopDetected(t *testing.T) {
	// Two switches pointing at each other.
	g := topo.New()
	s0 := g.AddSwitch("s0")
	s1 := g.AddSwitch("s1")
	h0 := g.AddHost("h0")
	h0.IP = netip.MustParseAddr("10.0.0.1")
	g.Connect(h0, s0, core.Gbps, 0)
	g.Connect(s0, s1, core.Gbps, 0)
	n := New(g)
	n.Table(s0.ID).Add(flowtable.Entry{Priority: 1, Match: flowtable.MatchAll(),
		Actions: []flowtable.Action{{Type: flowtable.ActionOutput, Port: 2}}}, 0)
	n.Table(s1.ID).Add(flowtable.Entry{Priority: 1, Match: flowtable.MatchAll(),
		Actions: []flowtable.Action{{Type: flowtable.ActionOutput, Port: 1}}}, 0)

	ft := core.FiveTuple{Src: h0.IP, Dst: netip.MustParseAddr("10.0.9.9"), Proto: core.ProtoUDP, SrcPort: 1, DstPort: 2}
	f := &fluid.Flow{ID: 1, Tuple: ft, Src: h0.ID, Dst: core.NodeNone, Demand: core.Gbps}
	n.StartFlow(f, 0)
	if f.State != fluid.Pending {
		t.Fatalf("looping flow state = %v", f.State)
	}
	if n.Drops() == 0 {
		t.Fatal("loop not counted as drop")
	}
}

func TestPortStats(t *testing.T) {
	n, g := starNet(t)
	sw, _ := g.NodeByName("s0")
	ft, src, dst := hostTuple(g, "h0", "h1")
	// Proactive exact rule so the flow runs.
	h1, _ := g.NodeByName("h1")
	var egress core.PortID
	for _, p := range sw.Ports {
		if p.Peer == h1.ID {
			egress = p.ID
		}
	}
	n.Table(sw.ID).Add(flowtable.Entry{Priority: 1, Match: flowtable.MatchAll(),
		Actions: []flowtable.Action{{Type: flowtable.ActionOutput, Port: egress}}}, 0)
	f := &fluid.Flow{ID: 1, Tuple: ft, Src: src, Dst: dst, Demand: core.Gbps}
	n.StartFlow(f, 0)

	stats := n.PortStatsOf(sw.ID, core.Second)
	if len(stats) != 4 {
		t.Fatalf("port stats count = %d", len(stats))
	}
	var txSeen, rxSeen bool
	for _, st := range stats {
		if st.Port == egress {
			if st.TxBytes != 125_000_000 {
				t.Fatalf("egress tx = %d, want 125MB", st.TxBytes)
			}
			if st.TxRate != core.Gbps {
				t.Fatalf("egress tx rate = %v", st.TxRate)
			}
			txSeen = true
		}
		if st.RxBytes == 125_000_000 {
			rxSeen = true
		}
	}
	if !txSeen || !rxSeen {
		t.Fatalf("stats missing directions: %+v", stats)
	}
	if n.PortStatsOf(core.NodeID(99), 0) != nil {
		t.Fatal("stats for missing node")
	}
}

func TestFlowStats(t *testing.T) {
	n, g := starNet(t)
	sw, _ := g.NodeByName("s0")
	ft, src, dst := hostTuple(g, "h0", "h1")
	h1, _ := g.NodeByName("h1")
	var egress core.PortID
	for _, p := range sw.Ports {
		if p.Peer == h1.ID {
			egress = p.ID
		}
	}
	n.Table(sw.ID).Add(flowtable.Entry{Priority: 10, Match: flowtable.ExactFlowMatch(ft),
		Actions: []flowtable.Action{{Type: flowtable.ActionOutput, Port: egress}}}, 0)
	f := &fluid.Flow{ID: 1, Tuple: ft, Src: src, Dst: dst, Demand: core.Gbps}
	n.StartFlow(f, 0)

	stats := n.FlowStatsOf(sw.ID, core.Second)
	if len(stats) != 1 {
		t.Fatalf("flow stats = %+v", stats)
	}
	if stats[0].Bytes != 125_000_000 {
		t.Fatalf("entry bytes = %d, want 125MB", stats[0].Bytes)
	}
	if n.FlowStatsOf(core.NodeID(99), 0) != nil {
		t.Fatal("flow stats for missing node")
	}
}

func TestExpireFlowEntries(t *testing.T) {
	n, g := starNet(t)
	sw, _ := g.NodeByName("s0")
	removedNodes := 0
	n.OnFlowRemoved = func(node core.NodeID, e *flowtable.Entry) { removedNodes++ }
	n.Table(sw.ID).Add(flowtable.Entry{Priority: 1, Match: flowtable.MatchAll(),
		Actions:     []flowtable.Action{{Type: flowtable.ActionDrop}},
		HardTimeout: 5 * core.Second}, 0)
	if got := n.ExpireFlowEntries(core.Second); got != 0 {
		t.Fatalf("premature expiry: %d", got)
	}
	if got := n.ExpireFlowEntries(6 * core.Second); got != 1 {
		t.Fatalf("expiry count = %d", got)
	}
	if removedNodes != 1 {
		t.Fatal("OnFlowRemoved not fired")
	}
}

func TestStopFlowClearsPunt(t *testing.T) {
	n, g := starNet(t)
	punts := 0
	n.OnPacketIn = func(PacketIn) { punts++ }
	ft, src, dst := hostTuple(g, "h0", "h1")
	f := &fluid.Flow{ID: 1, Tuple: ft, Src: src, Dst: dst, Demand: core.Gbps}
	n.StartFlow(f, 0)
	if punts != 1 {
		t.Fatal("no punt")
	}
	n.StopFlow(1, core.Second)
	// Same tuple, new flow: punts again because the old punt was cleared.
	f2 := &fluid.Flow{ID: 2, Tuple: ft, Src: src, Dst: dst, Demand: core.Gbps}
	n.StartFlow(f2, 2*core.Second)
	if punts != 2 {
		t.Fatalf("punts = %d, want 2", punts)
	}
}

func TestInstallRouteOnNonRouterErrors(t *testing.T) {
	n, g := starNet(t)
	sw, _ := g.NodeByName("s0")
	err := n.InstallRoute(sw.ID, fib.Route{}, 0)
	if err == nil {
		t.Fatal("InstallRoute on switch succeeded")
	}
	if err := n.WithdrawRoute(sw.ID, fib.Route{}, 0); err == nil {
		t.Fatal("WithdrawRoute on switch succeeded")
	}
	r, _ := topo.TwoRouters(core.Gbps, 0)
	nr := New(r)
	r1, _ := r.NodeByName("r1")
	if err := nr.ApplyFlowMod(r1.ID, FlowMod{}, 0); err == nil {
		t.Fatal("ApplyFlowMod on router succeeded")
	}
}

func TestHostIDs(t *testing.T) {
	n, g := starNet(t)
	ids := n.HostIDs()
	if len(ids) != len(g.Hosts()) {
		t.Fatalf("HostIDs = %v", ids)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// flowOf reads a flow's current state through the set's snapshot API
// (the spec struct passed to StartFlow does not track later changes).
func flowOf(t *testing.T, n *Network, id fluid.FlowID) fluid.Flow {
	t.Helper()
	f, ok := n.Flows.Flow(id)
	if !ok {
		t.Fatalf("flow %d missing", id)
	}
	return f
}

// TestPathInvariants checks, over randomized proactive rule sets, that
// every active flow's path is link-connected, starts at its source host,
// and terminates at its destination host.
func TestPathInvariants(t *testing.T) {
	g, err := topo.FatTree(topo.FatTreeOpts{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	n := New(g)
	// Destination-routing rules on all switches (the ECMP5 app's shape).
	for _, sw := range g.Switches() {
		for _, h := range g.Hosts() {
			paths := g.AllShortestPaths(sw.ID, h.ID)
			seen := map[core.PortID]bool{}
			var ports []core.PortID
			for _, p := range paths {
				if len(p) == 0 {
					continue
				}
				l := g.Link(p[0])
				if !seen[l.FromPort] {
					seen[l.FromPort] = true
					ports = append(ports, l.FromPort)
				}
			}
			if len(ports) == 0 {
				continue
			}
			var actions []flowtable.Action
			if len(ports) == 1 {
				actions = []flowtable.Action{{Type: flowtable.ActionOutput, Port: ports[0]}}
			} else {
				actions = []flowtable.Action{{Type: flowtable.ActionSelectGroup, Group: ports}}
			}
			n.Table(sw.ID).Add(flowtable.Entry{
				Priority: 10,
				Match:    flowtable.Match{DstBits: 32, Dst: h.IP},
				Actions:  actions,
			}, 0)
		}
	}
	hosts := g.Hosts()
	id := fluid.FlowID(1)
	for _, src := range hosts {
		for _, dst := range hosts {
			if src.ID == dst.ID {
				continue
			}
			ft := core.FiveTuple{Src: src.IP, Dst: dst.IP, Proto: core.ProtoUDP,
				SrcPort: uint16(id % 50000), DstPort: 99}
			f := &fluid.Flow{ID: id, Tuple: ft, Src: src.ID, Dst: dst.ID, Demand: core.Mbps}
			id++
			n.StartFlow(f, 0)
			if f.State != fluid.Active {
				t.Fatalf("%s->%s not active", src.Name, dst.Name)
			}
			// Path invariants.
			if len(f.Path) == 0 {
				t.Fatalf("%s->%s empty path", src.Name, dst.Name)
			}
			first := g.Link(f.Path[0])
			if first.From != src.ID {
				t.Fatalf("path does not start at source")
			}
			last := g.Link(f.Path[len(f.Path)-1])
			if last.To != dst.ID {
				t.Fatalf("path does not end at destination")
			}
			for i := 1; i < len(f.Path); i++ {
				prev := g.Link(f.Path[i-1])
				cur := g.Link(f.Path[i])
				if prev.To != cur.From {
					t.Fatalf("path disconnected at hop %d", i)
				}
			}
			n.StopFlow(f.ID, 0)
		}
	}
}

// failCableBetween fails/restores the cable joining two named nodes.
func setCable(t *testing.T, n *Network, g *topo.Graph, a, b string, down bool, now core.Time) *topo.Link {
	t.Helper()
	na, _ := g.NodeByName(a)
	nb, _ := g.NodeByName(b)
	ab := g.CableBetween(na.ID, nb.ID)
	if ab == nil {
		t.Fatalf("no cable %s-%s", a, b)
	}
	n.SetCableState(ab.ID, down, now)
	return ab
}

func TestSetCableStateRouterPrunesAndReroutes(t *testing.T) {
	n, g := routerNet(t)
	ft, src, dst := hostTuple(g, "h1", "h2")
	r1, _ := g.NodeByName("r1")
	r2, _ := g.NodeByName("r2")
	h2, _ := g.NodeByName("h2")
	var r1ToR2, r2ToH2 core.PortID
	for _, p := range r1.Ports {
		if p.Peer == r2.ID {
			r1ToR2 = p.ID
		}
	}
	for _, p := range r2.Ports {
		if p.Peer == h2.ID {
			r2ToH2 = p.ID
		}
	}
	must(t, n.InstallRoute(r1.ID, fib.Route{
		Prefix:   netip.MustParsePrefix("10.0.2.0/24"),
		NextHops: []fib.NextHop{{Port: r1ToR2, Via: netip.MustParseAddr("172.16.0.1")}},
	}, 0))
	must(t, n.InstallRoute(r2.ID, fib.Route{
		Prefix:   netip.MustParsePrefix("10.0.2.0/24"),
		NextHops: []fib.NextHop{{Port: r2ToH2, Via: h2.IP}},
	}, 0))
	f := &fluid.Flow{ID: 1, Tuple: ft, Src: src, Dst: dst, Demand: 300 * core.Mbps}
	n.StartFlow(f, 0)
	if f.State != fluid.Active {
		t.Fatalf("flow state = %v", f.State)
	}

	// Fail r1-r2: r1's FIB loses the route (interface-down prune), the
	// flow blackholes, and both directions' capacity hits zero.
	ab := setCable(t, n, g, "r1", "r2", true, core.Second)
	if got := flowOf(t, n, 1); got.State != fluid.Pending || got.Rate != 0 {
		t.Fatalf("after failure: state=%v rate=%v", got.State, got.Rate)
	}
	if n.FIB(r1.ID).Len() != 0 {
		t.Fatalf("r1 FIB not pruned: %v", n.FIB(r1.ID))
	}
	if n.Flows.Capacity(ab.ID) != 0 || n.Flows.Capacity(ab.Reverse) != 0 {
		t.Fatal("dead cable capacity not clamped")
	}

	// Restore and reinstall (as BGP re-convergence would): traffic returns.
	setCable(t, n, g, "r1", "r2", false, 2*core.Second)
	must(t, n.InstallRoute(r1.ID, fib.Route{
		Prefix:   netip.MustParsePrefix("10.0.2.0/24"),
		NextHops: []fib.NextHop{{Port: r1ToR2, Via: netip.MustParseAddr("172.16.0.1")}},
	}, 2*core.Second))
	if got := flowOf(t, n, 1); got.State != fluid.Active || got.Rate != 300*core.Mbps {
		t.Fatalf("after repair: state=%v rate=%v", got.State, got.Rate)
	}
}

func TestSetCableStateSwitchInvalidatesEntries(t *testing.T) {
	n, g := starNet(t)
	punts := 0
	n.OnPacketIn = func(PacketIn) { punts++ }
	removed := 0
	n.OnFlowRemoved = func(core.NodeID, *flowtable.Entry) { removed++ }
	sw, _ := g.NodeByName("s0")
	h1, _ := g.NodeByName("h1")
	ft, src, dst := hostTuple(g, "h0", "h1")
	var toH1 core.PortID
	for _, p := range sw.Ports {
		if p.Peer == h1.ID {
			toH1 = p.ID
		}
	}
	must(t, n.ApplyFlowMod(sw.ID, FlowMod{Kind: FlowModAdd, Entry: flowtable.Entry{
		Priority: 200,
		Match:    flowtable.ExactFlowMatch(ft),
		Actions:  []flowtable.Action{{Type: flowtable.ActionOutput, Port: toH1}},
	}}, 0))
	f := &fluid.Flow{ID: 1, Tuple: ft, Src: src, Dst: dst, Demand: 200 * core.Mbps}
	n.StartFlow(f, 0)
	if f.State != fluid.Active {
		t.Fatalf("flow state = %v", f.State)
	}

	// Fail s0-h1: the exact entry outputting into the dead link is
	// invalidated, OnFlowRemoved fires, and the flow re-punts for repair.
	setCable(t, n, g, "s0", "h1", true, core.Second)
	if removed != 1 {
		t.Fatalf("OnFlowRemoved fired %d times, want 1", removed)
	}
	if n.Table(sw.ID).Len() != 0 {
		t.Fatal("dead entry not invalidated")
	}
	if punts != 1 {
		t.Fatalf("punts = %d, want 1 (repair request)", punts)
	}
	if got := flowOf(t, n, 1); got.State != fluid.Pending {
		t.Fatalf("flow state after failure = %v", got.State)
	}
}

func TestSetCableRateResolves(t *testing.T) {
	n, g := starNet(t)
	sw, _ := g.NodeByName("s0")
	ft, src, dst := hostTuple(g, "h0", "h1")
	must(t, n.ApplyFlowMod(sw.ID, FlowMod{Kind: FlowModAdd, Entry: flowtable.Entry{
		Priority: 100,
		Match:    flowtable.MatchAll(),
		Actions:  []flowtable.Action{{Type: flowtable.ActionOutput, Port: 2}}, // s0 port 2 = h1
	}}, 0))
	f := &fluid.Flow{ID: 1, Tuple: ft, Src: src, Dst: dst, Demand: core.Gbps}
	n.StartFlow(f, 0)
	if got := flowOf(t, n, 1); got.Rate != core.Gbps {
		t.Fatalf("initial rate %v", got.Rate)
	}
	h0, _ := g.NodeByName("h0")
	ab := g.CableBetween(h0.ID, sw.ID)
	// Degrade the access cable to 250 Mbps: allocation follows without
	// any reroute.
	n.SetCableRate(ab.ID, 250*core.Mbps, core.Second)
	if got := flowOf(t, n, 1); got.Rate != 250*core.Mbps {
		t.Fatalf("degraded rate %v, want 250Mbps", got.Rate)
	}
	if g.Link(ab.ID).Rate() != 250*core.Mbps || g.Link(ab.Reverse).Rate() != 250*core.Mbps {
		t.Fatal("topology rate not updated on both directions")
	}
	n.SetCableRate(ab.ID, core.Gbps, 2*core.Second)
	if got := flowOf(t, n, 1); got.Rate != core.Gbps {
		t.Fatalf("restored rate %v", got.Rate)
	}
}

func TestSetNodeStateKillsTransit(t *testing.T) {
	n, g := starNet(t)
	sw, _ := g.NodeByName("s0")
	ft, src, dst := hostTuple(g, "h0", "h1")
	must(t, n.ApplyFlowMod(sw.ID, FlowMod{Kind: FlowModAdd, Entry: flowtable.Entry{
		Priority: 100,
		Match:    flowtable.MatchAll(),
		Actions:  []flowtable.Action{{Type: flowtable.ActionOutput, Port: 2}},
	}}, 0))
	f := &fluid.Flow{ID: 1, Tuple: ft, Src: src, Dst: dst, Demand: core.Gbps}
	n.StartFlow(f, 0)
	if f.State != fluid.Active {
		t.Fatalf("flow state = %v", f.State)
	}
	if !n.SetNodeState(sw.ID, true, core.Second) {
		t.Fatal("SetNodeState reported no change")
	}
	if got := flowOf(t, n, 1); got.State != fluid.Pending || got.Rate != 0 {
		t.Fatalf("flow through dead switch: state=%v rate=%v", got.State, got.Rate)
	}
	// Idempotent.
	if n.SetNodeState(sw.ID, true, core.Second) {
		t.Fatal("second SetNodeState(true) reported a change")
	}
	n.SetNodeState(sw.ID, false, 2*core.Second)
	if got := flowOf(t, n, 1); got.State != fluid.Active || got.Rate != core.Gbps {
		t.Fatalf("flow after node repair: state=%v rate=%v", got.State, got.Rate)
	}
}

func TestComponentsTrackInjections(t *testing.T) {
	// A 3-node chain: failing the middle cable must split the partition,
	// repairing it must merge, and a node outage must isolate the node —
	// all through the netmodel injection surface, which is what keeps the
	// index consistent with LinkAlive for the sharded solver.
	g, err := topo.Linear(3, topo.Switch, core.Gbps, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := New(g)
	comps := n.Components()
	if comps.Count() != 1 {
		t.Fatalf("connected chain has %d components, want 1", comps.Count())
	}
	s0, _ := g.NodeByName("s0")
	s1, _ := g.NodeByName("s1")
	s2, _ := g.NodeByName("s2")
	cable := g.CableBetween(s0.ID, s1.ID)

	if !n.SetCableState(cable.ID, true, 0) {
		t.Fatal("SetCableState reported no change")
	}
	if comps.Count() != 2 || comps.SameComponent(s0.ID, s1.ID) {
		t.Fatalf("after cable down: count=%d s0~s1=%v", comps.Count(), comps.SameComponent(s0.ID, s1.ID))
	}
	n.SetCableState(cable.ID, false, 0)
	if comps.Count() != 1 {
		t.Fatalf("after repair: count=%d, want 1", comps.Count())
	}

	// Node outage: netmodel only flips the node (the CM fails the cables
	// separately); the index must still isolate it.
	n.SetNodeState(s1.ID, true, 0)
	if comps.SameComponent(s0.ID, s2.ID) || comps.SameComponent(s1.ID, s0.ID) {
		t.Fatalf("after s1 down: s0~s2=%v s1~s0=%v, want both split",
			comps.SameComponent(s0.ID, s2.ID), comps.SameComponent(s1.ID, s0.ID))
	}
	n.SetNodeState(s1.ID, false, 0)
	if comps.Count() != 1 {
		t.Fatalf("after s1 up: count=%d, want 1", comps.Count())
	}
}

func TestShardedSolveAcrossCableBatch(t *testing.T) {
	// Two hosts on each of two chain switches; failing a host access
	// cable while flows run must leave rates consistent whether solved
	// with 1 worker or many (the netmodel-level determinism check; the
	// full oracle lives in the root package's parity test).
	mk := func(workers int) (*Network, *topo.Graph) {
		g, err := topo.Star(4, topo.Switch, core.Gbps, 0)
		if err != nil {
			t.Fatal(err)
		}
		n := New(g)
		n.Flows.SetWorkers(workers)
		return n, g
	}
	run := func(workers int) []core.Rate {
		n, g := mk(workers)
		n.AutoReroute = false
		hosts := g.Hosts()
		// Two flows to distinct destinations through the hub.
		for i := 0; i < 2; i++ {
			src, dst := hosts[i], hosts[2+i]
			path := []core.LinkID{src.Ports[0].Link, g.Node(src.Ports[0].Peer).Ports[2+i].Link}
			n.Flows.Add(&fluid.Flow{
				ID: fluid.FlowID(i + 1), Src: src.ID, Dst: dst.ID,
				Demand: core.Gbps, Path: path, State: fluid.Active,
			}, 0)
		}
		cable := g.Link(hosts[2].Ports[0].Link)
		n.SetCableState(cable.ID, true, 0)
		n.SetCableState(cable.ID, false, 0)
		rates := make([]core.Rate, 0, 2)
		for _, f := range n.Flows.Flows() {
			rates = append(rates, f.Rate)
		}
		return rates
	}
	seq := run(1)
	par := run(8)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("flow %d: rate %v (workers=1) vs %v (workers=8)", i+1, seq[i], par[i])
		}
	}
}
