// Command horsectl is the horsed campaign client: it consumes the same
// HTTP surface any user script would, turning the daemon's SSE event
// stream and analysis endpoints into live terminal output.
//
//	horsectl [-addr http://127.0.0.1:7600] watch [-until done] CAMPAIGN
//	horsectl [-addr http://127.0.0.1:7600] analyze [-metric M] [-csv] CAMPAIGN
//
// watch tails GET /campaigns/{id}/events, rendering one line per
// lifecycle event. It resumes with Last-Event-ID after any disconnect,
// so a daemon hiccup or a dropped slow-client connection never loses
// events. With -until STATE it exits when the campaign finishes: 0 if
// the final state matches (e.g. "done"), 1 otherwise — which is the
// whole CI polling loop in one flag.
//
// analyze fetches GET /campaigns/{id}/analysis[/{metric}] — the
// cross-run aggregation grouped by swept axis — and renders each series
// as an aligned table (or CSV with -csv), ready to eyeball or plot as a
// convergence-vs-latency / goodput-vs-MRAI curve.
package main

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/campaign"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: horsectl [-addr URL] watch [-until STATE] [-retries N] CAMPAIGN
       horsectl [-addr URL] analyze [-metric METRIC] [-csv] CAMPAIGN`)
}

// run is main with its streams and exit code exposed for testing.
func run(args []string, stdout, stderr io.Writer) int {
	global := flag.NewFlagSet("horsectl", flag.ContinueOnError)
	global.SetOutput(stderr)
	addr := global.String("addr", "http://127.0.0.1:7600", "horsed base URL")
	global.Usage = func() { usage(stderr); global.PrintDefaults() }
	if err := global.Parse(args); err != nil {
		return 2
	}
	rest := global.Args()
	if len(rest) == 0 {
		usage(stderr)
		return 2
	}
	base := strings.TrimRight(*addr, "/")
	switch rest[0] {
	case "watch":
		fs := flag.NewFlagSet("horsectl watch", flag.ContinueOnError)
		fs.SetOutput(stderr)
		until := fs.String("until", "", `wait for the campaign to finish; exit 0 iff its final state matches (e.g. "done")`)
		retries := fs.Int("retries", 10, "reconnect attempts before giving up on the stream")
		if err := fs.Parse(rest[1:]); err != nil {
			return 2
		}
		if fs.NArg() != 1 {
			usage(stderr)
			return 2
		}
		return watch(base, fs.Arg(0), *until, *retries, stdout, stderr)
	case "analyze":
		fs := flag.NewFlagSet("horsectl analyze", flag.ContinueOnError)
		fs.SetOutput(stderr)
		metric := fs.String("metric", "", "narrow to one metric (e.g. converged_rate)")
		csvOut := fs.Bool("csv", false, "emit CSV instead of an aligned table")
		if err := fs.Parse(rest[1:]); err != nil {
			return 2
		}
		if fs.NArg() != 1 {
			usage(stderr)
			return 2
		}
		return analyze(base, fs.Arg(0), *metric, *csvOut, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "horsectl: unknown command %q\n", rest[0])
		usage(stderr)
		return 2
	}
}

// watch tails the campaign's SSE stream, reconnecting with
// Last-Event-ID so no event is missed, until the stream delivers
// campaign_done (or, with until == "", until the stream ends).
func watch(base, id, until string, retries int, stdout, stderr io.Writer) int {
	var last int64
	var prog progress
	failures := 0
	for {
		req, err := http.NewRequest("GET", base+"/campaigns/"+url.PathEscape(id)+"/events", nil)
		if err != nil {
			fmt.Fprintf(stderr, "horsectl: %v\n", err)
			return 2
		}
		if last > 0 {
			req.Header.Set("Last-Event-ID", strconv.FormatInt(last, 10))
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			failures++
			if failures > retries {
				fmt.Fprintf(stderr, "horsectl: %v\n", err)
				return 2
			}
			time.Sleep(500 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			fmt.Fprintf(stderr, "horsectl: GET %s: %s: %s\n", req.URL, resp.Status, strings.TrimSpace(string(body)))
			return 2
		}
		before := last
		final, done := streamEvents(resp.Body, &last, &prog, stdout)
		resp.Body.Close()
		if last > before {
			// The stream made progress; a later disconnect gets the full
			// retry budget again. (A server that keeps closing the stream
			// without delivering anything new still exhausts it.)
			failures = 0
		}
		if done {
			if until == "" || string(final) == until {
				return 0
			}
			fmt.Fprintf(stderr, "horsectl: campaign %s finished %s, wanted %s\n", id, final, until)
			return 1
		}
		if until == "" {
			// No terminal condition requested; a closed stream is the end.
			return 0
		}
		// The stream ended before campaign_done (daemon restart, dropped
		// slow-client connection): resume from the last seen event.
		failures++
		if failures > retries {
			fmt.Fprintf(stderr, "horsectl: stream ended before campaign %s finished\n", id)
			return 2
		}
		time.Sleep(500 * time.Millisecond)
	}
}

// progress tracks rendered campaign counts across reconnects.
type progress struct {
	total, finished int
}

// streamEvents renders SSE events from r until the stream ends,
// advancing *last past every seen event. It reports the campaign's
// final state and whether campaign_done arrived.
func streamEvents(r io.Reader, last *int64, prog *progress, w io.Writer) (campaign.State, bool) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		case line == "" && data.Len() > 0:
			var ev campaign.Event
			if err := json.Unmarshal([]byte(data.String()), &ev); err == nil && ev.Seq > *last {
				// Seq-gating drops events a lax server replays across a
				// reconnect, so nothing renders (or counts) twice.
				*last = ev.Seq
				render(ev, prog, w)
				if ev.Type == campaign.EvCampaignDone {
					return ev.State, true
				}
			}
			data.Reset()
		}
	}
	return "", false
}

// render prints one human line per event.
func render(ev campaign.Event, prog *progress, w io.Writer) {
	switch ev.Type {
	case campaign.EvCampaignAccepted:
		prog.total = ev.Total
		fmt.Fprintf(w, "campaign %s: accepted, %d runs\n", ev.Campaign, ev.Total)
	case campaign.EvCampaignStarted:
		prog.total = ev.Total
		fmt.Fprintf(w, "campaign %s: running\n", ev.Campaign)
	case campaign.EvRunStarted:
		fmt.Fprintf(w, "  run %d started  %s\n", ev.Run.Index, ev.Run.Spec)
	case campaign.EvRunRetried:
		fmt.Fprintf(w, "  run %d retry %d  %s\n", ev.Run.Index, ev.Run.Attempt, ev.Run.Spec)
	case campaign.EvRunSucceeded:
		prog.finished++
		line := fmt.Sprintf("  run %d ok [%d/%d]  %s", ev.Run.Index, prog.finished, prog.total, ev.Run.Spec)
		if ev.Run.SteadyRx != "" {
			line += "  steady-rx=" + ev.Run.SteadyRx
		}
		if ev.Run.Digest != "" {
			line += "  fp=" + ev.Run.Digest
		}
		if ev.Run.Wall != nil {
			line += fmt.Sprintf("  wall=%s", ev.Run.Wall.Exec.Duration().Round(time.Millisecond))
		}
		fmt.Fprintln(w, line)
	case campaign.EvRunFailed:
		fmt.Fprintf(w, "  run %d FAILED (attempt %d)  %s: %s\n", ev.Run.Index, ev.Run.Attempt, ev.Run.Spec, ev.Run.Error)
	case campaign.EvRunCanceled:
		fmt.Fprintf(w, "  run %d canceled  %s\n", ev.Run.Index, ev.Run.Spec)
	case campaign.EvCampaignDone:
		fmt.Fprintf(w, "campaign %s: %s (%d/%d succeeded, %d failed, %d canceled)\n",
			ev.Campaign, ev.State, ev.Succeeded, ev.Total, ev.Failed, ev.Canceled)
	}
}

// analyze fetches the campaign's cross-run aggregation and renders it.
func analyze(base, id, metric string, csvOut bool, stdout, stderr io.Writer) int {
	u := base + "/campaigns/" + url.PathEscape(id) + "/analysis"
	if metric != "" {
		u += "/" + url.PathEscape(metric)
	}
	resp, err := http.Get(u)
	if err != nil {
		fmt.Fprintf(stderr, "horsectl: %v\n", err)
		return 2
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fmt.Fprintf(stderr, "horsectl: GET %s: %s: %s\n", u, resp.Status, strings.TrimSpace(string(body)))
		return 2
	}
	var a campaign.Analysis
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		fmt.Fprintf(stderr, "horsectl: decoding analysis: %v\n", err)
		return 2
	}
	if csvOut {
		return writeCSV(a, stdout, stderr)
	}
	writeTables(a, stdout)
	return 0
}

// writeCSV emits every series as flat rows, one header.
func writeCSV(a campaign.Analysis, stdout, stderr io.Writer) int {
	w := csv.NewWriter(stdout)
	w.Write([]string{"axis", "metric", "unit", "value", "runs", "n", "mean", "p5", "min", "max"}) //nolint:errcheck
	for _, s := range a.Series {
		for _, p := range s.Points {
			w.Write([]string{ //nolint:errcheck
				s.Axis, s.Metric, s.Unit, p.Value,
				strconv.Itoa(p.Runs), strconv.Itoa(p.N),
				formatValue(p.Mean), formatValue(p.P5), formatValue(p.Min), formatValue(p.Max),
			})
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		fmt.Fprintf(stderr, "horsectl: %v\n", err)
		return 2
	}
	return 0
}

// writeTables renders one aligned table per series.
func writeTables(a campaign.Analysis, stdout io.Writer) {
	fmt.Fprintf(stdout, "campaign %s  state=%s  runs=%d  axes=%s\n",
		a.Campaign, a.State, a.Runs, strings.Join(a.Axes, ","))
	for _, s := range a.Series {
		fmt.Fprintf(stdout, "\n%s vs %s (%s)\n", s.Metric, s.Axis, s.Unit)
		tw := tabwriter.NewWriter(stdout, 2, 8, 2, ' ', 0)
		fmt.Fprintln(tw, "value\truns\tn\tmean\tp5\tmin\tmax")
		for _, p := range s.Points {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%s\t%s\n",
				p.Value, p.Runs, p.N,
				formatValue(p.Mean), formatValue(p.P5), formatValue(p.Min), formatValue(p.Max))
		}
		tw.Flush() //nolint:errcheck
	}
}

// formatValue keeps table cells compact without losing curve shape.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}
