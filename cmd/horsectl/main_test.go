package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/spec"
)

// sseFrame renders one event as its SSE wire frame.
func sseFrame(t *testing.T, ev campaign.Event) string {
	t.Helper()
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
}

// campaignEvents is a full 2-run lifecycle, seq 1..7.
func campaignEvents() []campaign.Event {
	wall := &spec.WallStats{}
	return []campaign.Event{
		{Seq: 1, Type: campaign.EvCampaignAccepted, Campaign: "c1", State: campaign.Pending, Total: 2},
		{Seq: 2, Type: campaign.EvCampaignStarted, Campaign: "c1", State: campaign.Running, Total: 2},
		{Seq: 3, Type: campaign.EvRunStarted, Campaign: "c1", Run: &campaign.RunEvent{Index: 0, Spec: "fattree:4/ecmp5", Attempt: 1}},
		{Seq: 4, Type: campaign.EvRunSucceeded, Campaign: "c1", Run: &campaign.RunEvent{Index: 0, Spec: "fattree:4/ecmp5", Digest: "abcd1234abcd1234", SteadyRx: "300Mbps", Wall: wall}},
		{Seq: 5, Type: campaign.EvRunStarted, Campaign: "c1", Run: &campaign.RunEvent{Index: 1, Spec: "linear:4/ecmp5", Attempt: 1}},
		{Seq: 6, Type: campaign.EvRunSucceeded, Campaign: "c1", Run: &campaign.RunEvent{Index: 1, Spec: "linear:4/ecmp5", Digest: "ffff0000ffff0000", SteadyRx: "280Mbps", Wall: wall}},
		{Seq: 7, Type: campaign.EvCampaignDone, Campaign: "c1", State: campaign.Done, Total: 2, Succeeded: 2},
	}
}

// TestWatchResumesWithLastEventID serves the stream in two halves: the
// first connection is cut after event 4, so the client must reconnect
// carrying Last-Event-ID: 4 and see only the rest. Exit 0 because the
// campaign finishes in the -until state.
func TestWatchResumesWithLastEventID(t *testing.T) {
	events := campaignEvents()
	var mu sync.Mutex
	var gotResume []string
	conns := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/campaigns/c1/events" {
			http.NotFound(w, r)
			return
		}
		mu.Lock()
		conns++
		first := conns == 1
		gotResume = append(gotResume, r.Header.Get("Last-Event-ID"))
		mu.Unlock()
		w.Header().Set("Content-Type", "text/event-stream")
		if first {
			for _, ev := range events[:4] {
				fmt.Fprint(w, sseFrame(t, ev))
			}
			return // connection drops mid-campaign
		}
		for _, ev := range events[4:] {
			fmt.Fprint(w, sseFrame(t, ev))
		}
	}))
	defer ts.Close()

	var stdout, stderr bytes.Buffer
	code := run([]string{"-addr", ts.URL, "watch", "-until", "done", "c1"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(gotResume) != 2 || gotResume[0] != "" || gotResume[1] != "4" {
		t.Fatalf("Last-Event-ID per connection = %q, want [\"\" \"4\"]", gotResume)
	}
	out := stdout.String()
	for _, want := range []string{
		"campaign c1: accepted, 2 runs",
		"run 0 ok [1/2]",
		"fp=abcd1234abcd1234",
		"steady-rx=300Mbps",
		"run 1 ok [2/2]",
		"campaign c1: done (2/2 succeeded, 0 failed, 0 canceled)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("watch output missing %q:\n%s", want, out)
		}
	}
}

// TestWatchExitCodes pins the CI contract: 0 on the wanted final
// state, 1 on a different final state, 2 on transport-level failure.
func TestWatchExitCodes(t *testing.T) {
	events := campaignEvents()
	events[6].State = campaign.Failed
	events[6].Succeeded = 1
	events[6].Failed = 1
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/missing/events") {
			http.Error(w, "no such campaign", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		for _, ev := range events {
			fmt.Fprint(w, sseFrame(t, ev))
		}
	}))
	defer ts.Close()

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", ts.URL, "watch", "-until", "done", "c1"}, &stdout, &stderr); code != 1 {
		t.Errorf("failed campaign with -until done: exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-addr", ts.URL, "watch", "-until", "failed", "c1"}, &stdout, &stderr); code != 0 {
		t.Errorf("failed campaign with -until failed: exit %d, want 0 (stderr: %s)", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-addr", ts.URL, "watch", "-until", "done", "missing"}, &stdout, &stderr); code != 2 {
		t.Errorf("404 campaign: exit %d, want 2", code)
	}
	if code := run([]string{"frobnicate"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown command: exit %d, want 2", code)
	}
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no command: exit %d, want 2", code)
	}
}

// TestWatchStreamEndRetriesExhausted: a stream that keeps ending
// before campaign_done exhausts -retries and exits 2.
func TestWatchStreamEndRetriesExhausted(t *testing.T) {
	events := campaignEvents()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, sseFrame(t, events[0]))
	}))
	defer ts.Close()

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", ts.URL, "watch", "-until", "done", "-retries", "1", "c1"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "stream ended before campaign") {
		t.Errorf("stderr = %s", stderr.String())
	}
	// Without -until, a closed stream is simply the end: exit 0.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-addr", ts.URL, "watch", "c1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("watch without -until: exit %d, want 0; stderr: %s", code, stderr.String())
	}
}

// cannedAnalysis is a 2-point converged_rate curve over advertise_delay.
func cannedAnalysis() campaign.Analysis {
	return campaign.Analysis{
		Campaign: "c1", State: campaign.Done, Runs: 4,
		Axes:    []string{"advertise_delay", "dampening"},
		Metrics: []string{"converged_rate"},
		Series: []campaign.Series{{
			Axis: "advertise_delay", Metric: "converged_rate", Unit: "bps",
			Points: []campaign.Point{
				{Value: "2ms", Runs: 2, N: 6, Mean: 1.1375e8, P5: 4.75e7, Min: 4.75e7, Max: 2e8},
				{Value: "50ms", Runs: 2, N: 6, Mean: 1.02e8, P5: 4.25e7, Min: 4.25e7, Max: 1.8e8},
			},
		}},
	}
}

// TestAnalyzeRendering pins the table and CSV outputs over a canned
// analysis response, and the metric-path plumbing.
func TestAnalyzeRendering(t *testing.T) {
	var gotPath string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path
		if strings.Contains(r.URL.Path, "bogus") {
			http.Error(w, "unknown metric", http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(cannedAnalysis()) //nolint:errcheck
	}))
	defer ts.Close()

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", ts.URL, "analyze", "c1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if gotPath != "/campaigns/c1/analysis" {
		t.Errorf("path = %s", gotPath)
	}
	out := stdout.String()
	for _, want := range []string{
		"campaign c1  state=done  runs=4  axes=advertise_delay,dampening",
		"converged_rate vs advertise_delay (bps)",
		"2ms", "50ms", "1.1375e+08",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}

	stdout.Reset()
	if code := run([]string{"-addr", ts.URL, "analyze", "-metric", "converged_rate", "-csv", "c1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("csv: exit %d, stderr: %s", code, stderr.String())
	}
	if gotPath != "/campaigns/c1/analysis/converged_rate" {
		t.Errorf("metric path = %s", gotPath)
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2 points:\n%s", len(lines), stdout.String())
	}
	if lines[0] != "axis,metric,unit,value,runs,n,mean,p5,min,max" {
		t.Errorf("csv header = %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "advertise_delay,converged_rate,bps,2ms,2,6,") {
		t.Errorf("csv row = %s", lines[1])
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-addr", ts.URL, "analyze", "-metric", "bogus", "c1"}, &stdout, &stderr); code != 2 {
		t.Errorf("bogus metric: exit %d, want 2", code)
	}
}
