// Command horse is the general experiment runner: pick a topology, a
// control plane scenario and a workload, run it under the hybrid clock,
// and print the results.
//
// Usage examples:
//
//	horse -topo fattree:4 -scenario ecmp5 -traffic permutation:42 -dur 20s
//	horse -topo ring:8:2 -scenario bgp -traffic stride:1 -dur 30s
//	horse -topo two-routers -scenario bgp -dur 10s
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	horse "repro"
	"repro/internal/core"
	"repro/internal/traffic"
)

func main() {
	var (
		topoSpec    = flag.String("topo", "fattree:4", "topology: fattree:K, linear:N, star:N, ring:N[:CHORD], two-routers, wan:NAME (abilene, tier1), wan:mesh:SEED[:POPS]")
		scenario    = flag.String("scenario", "ecmp5", "control plane: bgp, bgp-ecmp, bgp-rr, ecmp5, hedera, reactive")
		trafficSpec = flag.String("traffic", "permutation:42", "workload: permutation:SEED, stride:N, none")
		rate        = flag.Float64("rate", 1.0, "per-flow rate in Gbps")
		dur         = flag.Duration("dur", 20*time.Second, "virtual duration")
		pacing      = flag.Float64("pacing", 1.0, "FTI pacing")
		verbose     = flag.Bool("v", false, "log subsystem activity")
		tsv         = flag.Bool("tsv", false, "dump aggregate rx series as TSV")
		naive       = flag.Bool("naive-solver", false, "use the from-scratch rate solver (ablation baseline)")
		workers     = flag.Int("solver-workers", 0, "rate solver worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
		delayScale  = flag.Float64("delay-scale", 1.0, "scale WAN geographic link delays (0 = zero-latency ablation)")
		dampening   = flag.Bool("dampening", false, "enable BGP route flap dampening")
		pcapDir     = flag.String("pcap", "", "record control plane traffic as pcapng traces in DIR (one file per speaker pair; open them in Wireshark)")
	)
	flag.Parse()

	bgpWanted := strings.HasPrefix(*scenario, "bgp")
	g, err := buildTopo(*topoSpec, bgpWanted, *delayScale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	isWAN := strings.HasPrefix(*topoSpec, "wan:")
	if isWAN && !bgpWanted {
		fmt.Fprintln(os.Stderr, "wan topologies are BGP router meshes; use -scenario bgp-rr")
		os.Exit(2)
	}
	if isWAN && *scenario != "bgp-rr" {
		fmt.Fprintln(os.Stderr, "note: single-AS WAN without -scenario bgp-rr runs plain iBGP (no reflection); expect partial convergence")
	}

	cfg := horse.Config{Pacing: *pacing, NaiveSolver: *naive, SolverWorkers: *workers}
	if *verbose {
		cfg.Logf = func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) }
	}
	exp := horse.NewExperiment(cfg)
	exp.SetTopology(g)
	if *pcapDir != "" {
		exp.CaptureTo(*pcapDir)
	}

	var damp *horse.Dampening
	if *dampening {
		damp = &horse.Dampening{}
	}
	switch *scenario {
	case "bgp":
		exp.UseBGP(horse.BGPOptions{Dampening: damp})
	case "bgp-ecmp":
		exp.UseBGP(horse.BGPOptions{ECMP: true, Dampening: damp})
	case "bgp-rr":
		// The WAN scenario: iBGP route reflection with latency-delayed
		// control plane delivery.
		exp.UseBGP(horse.BGPOptions{
			RouteReflection: true,
			LinkLatency:     true,
			Dampening:       damp,
		})
	case "ecmp5":
		exp.UseSDN(horse.AppECMP5())
	case "hedera":
		exp.UseSDN(horse.AppHedera(5 * horse.Second))
	case "reactive":
		exp.UseSDN(horse.AppReactive(false))
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	flowRate := horse.Rate(*rate) * horse.Gbps
	switch {
	case *trafficSpec == "none":
	case strings.HasPrefix(*trafficSpec, "permutation"):
		seed := int64(42)
		if _, arg, ok := strings.Cut(*trafficSpec, ":"); ok {
			seed, _ = strconv.ParseInt(arg, 10, 64)
		}
		if err := exp.SendPermutation(seed, flowRate, 0, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case strings.HasPrefix(*trafficSpec, "stride"):
		n := 1
		if _, arg, ok := strings.Cut(*trafficSpec, ":"); ok {
			n, _ = strconv.Atoi(arg)
		}
		if err := exp.AddTraffic(traffic.Stride(n, flowRate, 0, 0)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown traffic %q\n", *trafficSpec)
		os.Exit(2)
	}

	res, err := exp.Run(core.FromDuration(*dur))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *tsv {
		fmt.Print(res.AggregateRx.TSV())
	}
	fmt.Println(res)
	fmt.Printf("rate solver: %d solves, %d components (largest %d flows), %d parallel, workers=%d (naive=%v)\n",
		res.Solves, res.Solver.Components, res.Solver.MaxComponentFlows,
		res.Solver.ParallelSolves, res.SolverWorkers, *naive)
	mem := res.Solver.Mem
	fmt.Printf("solver memory: %d flow slots (%d live, %d free), %d links, arenas %d B paths + %d B members, %d B scratch\n",
		mem.FlowSlots, mem.LiveFlows, mem.FreeFlows, mem.LinkSlots,
		mem.PathArenaBytes, mem.MemberArenaBytes, mem.ScratchBytes)
	if res.MeanPathLatency > 0 {
		fmt.Printf("path latency: %v rate-weighted mean one-way\n", res.MeanPathLatency)
	}
	if conv, ok := res.ConvergedAt(0.95); ok {
		fmt.Printf("converged: aggregate rx reached 95%% of steady at t=%v\n", conv)
	}
	if len(res.CaptureFiles) > 0 {
		fmt.Printf("capture: %d pcapng traces in %s (inspect with Wireshark or cmd/pcapcheck)\n",
			len(res.CaptureFiles), *pcapDir)
	}
}

func buildTopo(spec string, routers bool, delayScale float64) (*horse.Topology, error) {
	kind, rest, _ := strings.Cut(spec, ":")
	opt := horse.SDN()
	if routers {
		opt = horse.BGP()
	}
	switch kind {
	case "wan":
		name, arg, _ := strings.Cut(rest, ":")
		if name == "mesh" {
			parts := strings.Split(arg, ":")
			seed, err := strconv.ParseInt(parts[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("wan:mesh needs a seed: %w", err)
			}
			pops := 16
			if len(parts) > 1 {
				if pops, err = strconv.Atoi(parts[1]); err != nil {
					return nil, fmt.Errorf("wan:mesh PoP count: %w", err)
				}
			}
			return horse.WANMesh(pops, seed, horse.DelayScale(delayScale))
		}
		return horse.WAN(name, horse.DelayScale(delayScale))
	case "fattree":
		k, err := strconv.Atoi(rest)
		if err != nil {
			return nil, fmt.Errorf("fattree needs an arity: %w", err)
		}
		return horse.FatTree(k, opt)
	case "linear":
		n, err := strconv.Atoi(rest)
		if err != nil {
			return nil, fmt.Errorf("linear needs a length: %w", err)
		}
		return horse.Linear(n, opt)
	case "star":
		n, err := strconv.Atoi(rest)
		if err != nil {
			return nil, fmt.Errorf("star needs a size: %w", err)
		}
		return horse.Star(n, opt)
	case "ring":
		parts := strings.Split(rest, ":")
		n, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("ring needs a size: %w", err)
		}
		chord := 0
		if len(parts) > 1 {
			chord, _ = strconv.Atoi(parts[1])
		}
		return horse.WANRing(n, chord, opt)
	case "two-routers":
		return horse.TwoRouters(opt)
	default:
		return nil, fmt.Errorf("unknown topology kind %q", kind)
	}
}
