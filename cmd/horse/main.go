// Command horse is the general experiment runner: pick a topology, a
// control plane scenario and a workload, run it under the hybrid clock,
// and print the results. All spec parsing lives in internal/spec,
// shared with cmd/tedemo, cmd/fig3 and the horsed campaign daemon — a
// flag invocation here is the same experiment as the equivalent
// submitted campaign run.
//
// Usage examples:
//
//	horse -topo fattree:4 -scenario ecmp5 -traffic permutation:42 -dur 20s
//	horse -topo ring:8:2 -scenario bgp -traffic stride:1 -dur 30s
//	horse -topo two-routers -scenario bgp -dur 10s
//	horse -traffic matrix:demands.csv:2 -capacity walk:7:250ms -dur 10s
//	horse -traffic incast:42:8 -scenario hedera -dur 10s
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/spec"
)

func main() {
	var (
		topoSpec    = flag.String("topo", "fattree:4", "topology: fattree:K, linear:N, star:N, ring:N[:CHORD], two-routers, wan:NAME (abilene, tier1), wan:mesh:SEED[:POPS], wan:multi:SEED[:ASES[:POPS[:PREFIXES]]]")
		scenario    = flag.String("scenario", "ecmp5", "control plane: bgp, bgp-ecmp, bgp-rr, ecmp5, hedera, reactive")
		trafficSpec = flag.String("traffic", spec.DefaultTraffic, "workload: permutation:SEED, stride:N, matrix:FILE[:SCALE], pareto[:SEED[:N]], lognormal[:SEED[:N]], incast[:SEED[:FANIN]], alltoall[:PHASES], ring[:STEPS], none")
		capacity    = flag.String("capacity", "", "time-varying link capacity: walk[:SEED[:PERIOD]], trace:FILE, none")
		rate        = flag.Float64("rate", spec.DefaultRate, "per-flow rate in Gbps")
		dur         = flag.Duration("dur", spec.DefaultDur.Duration(), "virtual duration")
		pacing      = flag.Float64("pacing", spec.DefaultPacing, "FTI pacing")
		verbose     = flag.Bool("v", false, "log subsystem activity")
		tsv         = flag.Bool("tsv", false, "dump aggregate rx series as TSV")
		naive       = flag.Bool("naive-solver", false, "use the from-scratch rate solver (ablation baseline)")
		workers     = flag.Int("solver-workers", 0, "rate solver worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
		delayScale  = flag.Float64("delay-scale", 1.0, "scale WAN geographic link delays (0 = zero-latency ablation)")
		dampening   = flag.Bool("dampening", false, "enable BGP route flap dampening")
		advDelay    = flag.Duration("advertise-delay", 0, "BGP MRAI-style batching window (0 = speaker default 2ms)")
		pcapDir     = flag.String("pcap", "", "record control plane traffic as pcapng traces in DIR (one file per speaker pair; open them in Wireshark)")
	)
	flag.Parse()

	run := spec.Run{
		Topo:           *topoSpec,
		Scenario:       *scenario,
		Traffic:        *trafficSpec,
		Capacity:       *capacity,
		RateGbps:       *rate,
		Dur:            spec.Duration(*dur),
		Pacing:         *pacing,
		NaiveSolver:    *naive,
		SolverWorkers:  *workers,
		DelayScale:     delayScale,
		Dampening:      *dampening,
		AdvertiseDelay: spec.Duration(*advDelay),
		CaptureDir:     *pcapDir,
	}
	// Parse errors are usage errors (exit 2); runtime failures exit 1.
	ts, err := spec.ParseTopo(run.Topo)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sc, err := spec.ParseScenario(run.Scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := run.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if ts.WAN() && sc.Name != "bgp-rr" {
		fmt.Fprintln(os.Stderr, "note: single-AS WAN without -scenario bgp-rr runs plain iBGP (no reflection); expect partial convergence")
	}

	exp, err := run.Experiment()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *verbose {
		exp.SetLogf(func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) })
	}

	res, err := exp.Run(run.Until())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *tsv {
		fmt.Print(res.AggregateRx.TSV())
	}
	fmt.Println(res)
	fmt.Printf("rate solver: %d solves, %d components (largest %d flows), %d parallel, workers=%d (naive=%v)\n",
		res.Solves, res.Solver.Components, res.Solver.MaxComponentFlows,
		res.Solver.ParallelSolves, res.SolverWorkers, *naive)
	mem := res.Solver.Mem
	fmt.Printf("solver memory: %d flow slots (%d live, %d free), %d links, arenas %d B paths + %d B members, %d B scratch\n",
		mem.FlowSlots, mem.LiveFlows, mem.FreeFlows, mem.LinkSlots,
		mem.PathArenaBytes, mem.MemberArenaBytes, mem.ScratchBytes)
	if res.MeanPathLatency > 0 {
		fmt.Printf("path latency: %v rate-weighted mean one-way\n", res.MeanPathLatency)
	}
	if conv, ok := res.ConvergedAt(0.95); ok {
		fmt.Printf("converged: aggregate rx reached 95%% of steady at t=%v\n", conv)
	}
	if len(res.CaptureFiles) > 0 {
		fmt.Printf("capture: %d pcapng traces in %s (inspect with Wireshark or cmd/pcapcheck)\n",
			len(res.CaptureFiles), *pcapDir)
	}
}
