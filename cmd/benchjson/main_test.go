package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchOutput is a realistic `go test -bench -benchmem` transcript.
const benchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkSolveScale/flows=1000-8         	     100	   1804695 ns/op	       3 B/op	       0 allocs/op
BenchmarkSolveScale/flows=10000-8        	      10	  18046950 ns/op	      30 B/op	       1 allocs/op
BenchmarkSolveIncremental-8              	    5000	    240000 ns/op	12000 solved-flows/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	4.2s
`

// TestParse covers the happy path: headers, -benchmem metrics, extra
// ReportMetric units, and GOMAXPROCS suffix stripping.
func TestParse(t *testing.T) {
	e, err := parse(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if e.CPU != "AMD EPYC 7B13" {
		t.Errorf("CPU = %q", e.CPU)
	}
	if e.Package != "repro" {
		t.Errorf("Package = %q", e.Package)
	}
	if len(e.Benchmarks) != 3 {
		t.Fatalf("%d benchmarks, want 3", len(e.Benchmarks))
	}

	first := e.Benchmarks[0]
	// The -8 GOMAXPROCS suffix is stripped; the =1000 parameter is not.
	if first.Name != "BenchmarkSolveScale/flows=1000" {
		t.Errorf("name = %q, want the -8 suffix stripped", first.Name)
	}
	if first.Iterations != 100 {
		t.Errorf("iterations = %d", first.Iterations)
	}
	for unit, want := range map[string]float64{
		"ns/op": 1804695, "B/op": 3, "allocs/op": 0,
	} {
		if got := first.Metrics[unit]; got != want {
			t.Errorf("metric %s = %v, want %v", unit, got, want)
		}
	}

	// Custom ReportMetric units ride along.
	third := e.Benchmarks[2]
	if third.Name != "BenchmarkSolveIncremental" {
		t.Errorf("name = %q", third.Name)
	}
	if got := third.Metrics["solved-flows/op"]; got != 12000 {
		t.Errorf("solved-flows/op = %v, want 12000", got)
	}
}

// TestParseRejectsEmpty pins the error when no result lines appear (the
// piped `go test` run failed or matched no benchmarks).
func TestParseRejectsEmpty(t *testing.T) {
	for _, in := range []string{
		"",
		"goos: linux\nPASS\nok  \trepro\t0.1s\n",
		// A Benchmark line with a malformed iteration count is skipped,
		// leaving nothing.
		"BenchmarkBroken-8 xyz 123 ns/op\n",
		// Odd field count (torn line) is skipped too.
		"BenchmarkTorn-8 100 1804695\n",
	} {
		if _, err := parse(strings.NewReader(in)); err == nil {
			t.Errorf("parse(%q) succeeded, want error", in)
		}
	}
}

// TestMerge pins replace-by-label semantics.
func TestMerge(t *testing.T) {
	a := Entry{Label: "before", Benchmarks: []Benchmark{{Name: "X", Iterations: 1}}}
	b := Entry{Label: "after"}
	entries := merge(nil, a)
	entries = merge(entries, b)
	if len(entries) != 2 {
		t.Fatalf("%d entries, want 2", len(entries))
	}

	a2 := Entry{Label: "before", Benchmarks: []Benchmark{{Name: "X", Iterations: 99}}}
	entries = merge(entries, a2)
	if len(entries) != 2 {
		t.Fatalf("merge duplicated the label: %d entries", len(entries))
	}
	if entries[0].Benchmarks[0].Iterations != 99 {
		t.Error("merge did not replace the matching entry in place")
	}
	if entries[0].Label != "before" || entries[1].Label != "after" {
		t.Error("merge reordered entries")
	}
}

// TestMergeSeqMonotonic pins the run-ordering key: every recording
// takes the next seq — including a re-run of an existing label, which
// keeps its array slot but moves to the end of the seq order. Without
// this, a commit re-run on the same day is unsortable (same label,
// same date, same commit).
func TestMergeSeqMonotonic(t *testing.T) {
	entries := merge(nil, Entry{Label: "before"})
	entries = merge(entries, Entry{Label: "after"})
	if entries[0].Seq != 1 || entries[1].Seq != 2 {
		t.Fatalf("seqs = %d, %d, want 1, 2", entries[0].Seq, entries[1].Seq)
	}

	entries = merge(entries, Entry{Label: "before", Commit: "abc123"})
	if len(entries) != 2 {
		t.Fatalf("%d entries, want 2", len(entries))
	}
	if entries[0].Seq != 3 {
		t.Errorf("re-run label seq = %d, want 3 (latest recording)", entries[0].Seq)
	}
	if entries[1].Seq != 2 {
		t.Errorf("untouched entry seq = %d, want 2", entries[1].Seq)
	}

	// Legacy trajectory files predate seq: their entries unmarshal with
	// seq 0 and the next recording starts the counter at 1.
	legacy := []Entry{{Label: "old-a"}, {Label: "old-b"}}
	got := merge(legacy, Entry{Label: "ci"})
	if got[2].Seq != 1 {
		t.Errorf("first recording over a legacy file: seq = %d, want 1", got[2].Seq)
	}
}

// TestRunAppendsToTrajectory drives run() end to end twice: the file is
// created, then the second invocation appends while a re-run of the
// first label replaces.
func TestRunAppendsToTrajectory(t *testing.T) {
	out := filepath.Join(t.TempDir(), "traj.json")
	var stdout, stderr bytes.Buffer

	if code := run([]string{"-label", "before", "-out", out},
		strings.NewReader(benchOutput), &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	if code := run([]string{"-label", "after", "-out", out},
		strings.NewReader(benchOutput), &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	// Re-running a label must replace, not append.
	if code := run([]string{"-label", "before", "-out", out, "-commit", "abc123"},
		strings.NewReader(benchOutput), &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}

	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	if err := json.Unmarshal(buf, &entries); err != nil {
		t.Fatalf("%v in %s", err, buf)
	}
	if len(entries) != 2 {
		t.Fatalf("%d entries, want 2 (before replaced in place)", len(entries))
	}
	if entries[0].Label != "before" || entries[0].Commit != "abc123" {
		t.Errorf("entry 0 = %q commit %q, want the re-run before", entries[0].Label, entries[0].Commit)
	}
	if entries[1].Label != "after" {
		t.Errorf("entry 1 = %q", entries[1].Label)
	}
	if len(entries[0].Benchmarks) != 3 {
		t.Errorf("entry 0 has %d benchmarks, want 3", len(entries[0].Benchmarks))
	}
	// Seq survives the round trip through the file: the re-run "before"
	// was the third recording, "after" the second.
	if entries[0].Seq != 3 || entries[1].Seq != 2 {
		t.Errorf("seqs = %d, %d, want 3, 2", entries[0].Seq, entries[1].Seq)
	}
}

// TestRunExitCodes pins the CLI contract: missing -label is a usage
// error (2), bad stdin and a corrupt trajectory are failures (1).
func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer

	if code := run(nil, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("run without -label = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-label is required") {
		t.Errorf("stderr = %q", stderr.String())
	}

	stderr.Reset()
	out := filepath.Join(dir, "t.json")
	if code := run([]string{"-label", "x", "-out", out},
		strings.NewReader("no benchmarks here\n"), &stdout, &stderr); code != 1 {
		t.Errorf("run with empty stdin = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "no benchmark result lines") {
		t.Errorf("stderr = %q", stderr.String())
	}

	stderr.Reset()
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-label", "x", "-out", corrupt},
		strings.NewReader(benchOutput), &stdout, &stderr); code != 1 {
		t.Errorf("run with corrupt trajectory = %d, want 1", code)
	}
}
