// Command benchjson converts `go test -bench` output into a JSON
// trajectory file. Each invocation parses one benchmark run from stdin
// and appends it as a labelled entry to the output file (creating it if
// absent), so successive runs — before/after a refactor, or one per CI
// build — accumulate into a perf curve instead of overwriting each other.
//
// Usage:
//
//	go test -run xxx -bench SolveScale -benchmem . | benchjson -label after-soa -out BENCH_solve.json
//
// Entries with the same label are replaced in place (re-running a
// configuration updates its numbers rather than duplicating them).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one result line: its name, iteration count and the
// value-per-unit metrics go test reported (ns/op, B/op, allocs/op and any
// b.ReportMetric extras).
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Entry is one labelled benchmark run.
type Entry struct {
	Label string `json:"label"`
	// Seq is a monotonic recording counter across the trajectory file:
	// every invocation gets max(existing)+1, so sorting by seq recovers
	// recording order even when a label (or the same commit) is re-run
	// on the same day — date and commit alone can't order that.
	Seq        int64       `json:"seq"`
	Date       string      `json:"date"`
	Commit     string      `json:"commit,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its streams and exit code exposed for testing.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		label  = fs.String("label", "", "entry label, e.g. before-soa / after-soa / ci (required)")
		out    = fs.String("out", "BENCH_solve.json", "trajectory file to append to")
		commit = fs.String("commit", "", "commit hash to record (optional)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *label == "" {
		fmt.Fprintln(stderr, "benchjson: -label is required")
		return 2
	}

	entry, err := parse(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	entry.Label = *label
	entry.Commit = *commit
	entry.Date = time.Now().UTC().Format("2006-01-02")

	entries, err := load(*out)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	entries = merge(entries, entry)

	buf, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "benchjson: %d benchmarks recorded as %q in %s (%d entries)\n",
		len(entry.Benchmarks), entry.Label, *out, len(entries))
	return 0
}

// merge appends the entry to the trajectory, replacing an existing entry
// with the same label in place (re-running a configuration updates its
// numbers rather than duplicating them). The merged entry always takes
// the next seq, so a replaced entry's seq still reflects when it was
// last recorded.
func merge(entries []Entry, entry Entry) []Entry {
	entry.Seq = nextSeq(entries)
	for i := range entries {
		if entries[i].Label == entry.Label {
			entries[i] = entry
			return entries
		}
	}
	return append(entries, entry)
}

// nextSeq is one past the highest seq in the trajectory (1 for a fresh
// or pre-seq file, whose entries all carry zero).
func nextSeq(entries []Entry) int64 {
	var max int64
	for i := range entries {
		if entries[i].Seq > max {
			max = entries[i].Seq
		}
	}
	return max + 1
}

// load reads an existing trajectory file; a missing file is an empty one.
func load(path string) ([]Entry, error) {
	buf, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []Entry
	if err := json.Unmarshal(buf, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return entries, nil
}

// parse reads `go test -bench` output: header lines (goos/goarch/pkg/cpu)
// followed by result lines of the form
//
//	BenchmarkName-8   	  5	 1804695 ns/op	 3 B/op	 0 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parse(r io.Reader) (Entry, error) {
	var e Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu:"):
			e.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			e.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so names are stable across hosts
		// (only the final -N, which would also bite names ending in a
		// number like .../flows=100000).
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		bm := Benchmark{
			Name:       name,
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			bm.Metrics[fields[i+1]] = v
		}
		e.Benchmarks = append(e.Benchmarks, bm)
	}
	if err := sc.Err(); err != nil {
		return e, err
	}
	if len(e.Benchmarks) == 0 {
		return e, errors.New("no benchmark result lines on stdin")
	}
	return e, nil
}
