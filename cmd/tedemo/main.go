// Command tedemo runs one of the paper's three traffic-engineering
// demonstrations on a fat-tree and prints the aggregate receive-rate time
// series (the graph the demo shows "of the aggregated rate of all flows
// arriving at the hosts"), followed by a summary.
//
// Usage:
//
//	tedemo -te bgp|hedera|ecmp5 [-k 4] [-dur 20s] [-pacing 1.0] [-seed 42] [-tsv]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	horse "repro"
	"repro/internal/core"
)

func main() {
	var (
		te     = flag.String("te", "ecmp5", "TE approach: bgp, hedera or ecmp5")
		k      = flag.Int("k", 4, "fat-tree arity (4, 6 or 8 in the demo)")
		dur    = flag.Duration("dur", 20*time.Second, "virtual experiment duration")
		pacing = flag.Float64("pacing", 1.0, "FTI pacing (1.0 = real time)")
		seed   = flag.Int64("seed", 42, "permutation seed")
		tsv    = flag.Bool("tsv", false, "print the full time series as TSV")
		naive  = flag.Bool("naive-solver", false, "use the from-scratch rate solver (ablation baseline)")
	)
	flag.Parse()

	exp := horse.NewExperiment(horse.Config{Pacing: *pacing, NaiveSolver: *naive})
	var (
		g   *horse.Topology
		err error
	)
	switch *te {
	case "bgp":
		g, err = horse.FatTree(*k, horse.BGP())
		if err == nil {
			exp.SetTopology(g)
			exp.UseBGP(horse.BGPOptions{ECMP: true})
		}
	case "hedera":
		g, err = horse.FatTree(*k, horse.SDN())
		if err == nil {
			exp.SetTopology(g)
			exp.UseSDN(horse.AppHedera(5 * horse.Second))
		}
	case "ecmp5":
		g, err = horse.FatTree(*k, horse.SDN())
		if err == nil {
			exp.SetTopology(g)
			exp.UseSDN(horse.AppECMP5())
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown TE approach %q\n", *te)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := exp.SendPermutation(*seed, 1*horse.Gbps, 0, 0); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := exp.Run(core.FromDuration(*dur))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *tsv {
		fmt.Print(res.AggregateRx.TSV())
	}
	hosts := res.Topology.Hosts
	fmt.Printf("# te=%s k=%d hosts=%d offered=%dGbps\n", *te, *k, hosts, hosts)
	fmt.Printf("steady aggregate rx : %v (%.1f%% of offered)\n",
		res.SteadyAggregateRx(), 100*float64(res.SteadyAggregateRx())/float64(horse.Gbps)/float64(hosts))
	fmt.Printf("peak aggregate rx   : %v\n", horse.Rate(res.AggregateRx.Max()))
	fmt.Printf("execution wall time : %v (setup %v)\n",
		res.Sim.WallTotal.Round(time.Millisecond), res.SetupWall.Round(time.Millisecond))
	fmt.Printf("clock               : FTI %v / DES %v virtual, %d transitions\n",
		res.Sim.VirtualFTI, res.Sim.VirtualDES, res.Sim.Transitions)
	fmt.Printf("control plane       : %d bytes, %d writes, %d flowmods, %d routes, %d packet-ins, %d stats\n",
		res.ControlBytes, res.ControlWrites, res.FlowModsApplied,
		res.RouteInstalls, res.PacketIns, res.StatsQueries)
	fmt.Printf("rate solver         : %d solves (naive=%v)\n", res.Solves, *naive)
}
