// Command tedemo runs one of the paper's three traffic-engineering
// demonstrations on a fat-tree and prints the aggregate receive-rate time
// series (the graph the demo shows "of the aggregated rate of all flows
// arriving at the hosts"), followed by a summary.
//
// With -fail, an agg-core link dies one third into the run and is
// repaired at two thirds: the series shows the throughput collapse and
// the control plane's repair — BGP withdraws and reroutes, or the SDN
// controller reacts to PORT_STATUS — followed by full restoration at
// link-up. A dip/recovery summary quantifies both.
//
// The workload defaults to the paper's permutation but any -traffic
// spec form works (matrix:FILE[:SCALE], pareto, incast, alltoall, …),
// and -capacity adds time-varying link capacity (seeded random walk or
// trace replay); both print a workload summary — goodput tracking and
// the min-host-rx floor distribution — alongside the aggregate series.
//
// Usage:
//
//	tedemo -te bgp|hedera|ecmp5 [-k 4] [-dur 20s] [-pacing 1.0] [-seed 42] [-tsv] [-fail] [-solver-workers N]
//	tedemo -traffic matrix:demands.csv:2 -capacity walk:7:250ms
//	tedemo -traffic incast:42:8 -dur 10s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	horse "repro"
	"repro/internal/spec"
	"repro/internal/stats"
)

// orNone renders an empty capacity spec as "none" in the summary.
func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// scenarioFor maps the demo's TE names onto the shared spec scenarios:
// the demo's "bgp" is BGP with ECMP path selection.
var scenarioFor = map[string]string{
	"bgp":    "bgp-ecmp",
	"hedera": "hedera",
	"ecmp5":  "ecmp5",
}

func main() {
	var (
		te       = flag.String("te", "ecmp5", "TE approach: bgp, hedera or ecmp5")
		k        = flag.Int("k", 4, "fat-tree arity (4, 6 or 8 in the demo)")
		dur      = flag.Duration("dur", 20*time.Second, "virtual experiment duration")
		pacing   = flag.Float64("pacing", 1.0, "FTI pacing (1.0 = real time)")
		seed     = flag.Int64("seed", 42, "permutation seed")
		tsv      = flag.Bool("tsv", false, "print the full time series as TSV")
		naive    = flag.Bool("naive-solver", false, "use the from-scratch rate solver (ablation baseline)")
		fail     = flag.Bool("fail", false, "inject an agg-core link failure at dur/3, repair at 2*dur/3")
		workers  = flag.Int("solver-workers", 0, "rate solver worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
		pcapDir  = flag.String("pcap", "", "record control plane traffic as pcapng traces in DIR")
		trafficS = flag.String("traffic", "", "workload spec (matrix:FILE[:SCALE], pareto[:SEED[:N]], incast[:SEED[:FANIN]], alltoall[:PHASES], ring[:STEPS], …); empty = permutation:<seed>")
		capacity = flag.String("capacity", "", "time-varying link capacity: walk[:SEED[:PERIOD]] or trace:FILE")
	)
	flag.Parse()

	scenario, ok := scenarioFor[*te]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown TE approach %q\n", *te)
		os.Exit(2)
	}
	workload := fmt.Sprintf("permutation:%d", *seed)
	if *trafficS != "" {
		workload = *trafficS
	}
	run := spec.Run{
		Topo:          fmt.Sprintf("fattree:%d", *k),
		Scenario:      scenario,
		Traffic:       workload,
		Capacity:      *capacity,
		Dur:           spec.Duration(*dur),
		Pacing:        *pacing,
		NaiveSolver:   *naive,
		SolverWorkers: *workers,
		CaptureDir:    *pcapDir,
	}
	if *fail || *capacity != "" || *trafficS != "" {
		// Sample finely enough to resolve dips: control plane repair and
		// incast bursts take milliseconds of (FTI-paced) virtual time.
		run.SampleInterval = spec.Duration(10 * time.Millisecond)
	}
	exp, err := run.Experiment()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	end := run.Until()
	failAt, healAt := end/3, 2*end/3
	if *fail {
		// The same victim exists in both the SDN and the BGP fat-tree.
		if err := exp.At(failAt).LinkDown("agg-0-0", "core-0-0"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := exp.At(healAt).LinkUp("agg-0-0", "core-0-0"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	res, err := exp.Run(end)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *tsv {
		fmt.Print(res.AggregateRx.TSV())
	}
	hosts := res.Topology.Hosts
	fmt.Printf("# te=%s k=%d hosts=%d offered=%dGbps\n", *te, *k, hosts, hosts)
	fmt.Printf("steady aggregate rx : %v (%.1f%% of offered)\n",
		res.SteadyAggregateRx(), 100*float64(res.SteadyAggregateRx())/float64(horse.Gbps)/float64(hosts))
	fmt.Printf("peak aggregate rx   : %v\n", horse.Rate(res.AggregateRx.Max()))
	fmt.Printf("execution wall time : %v (setup %v)\n",
		res.Sim.WallTotal.Round(time.Millisecond), res.SetupWall.Round(time.Millisecond))
	fmt.Printf("clock               : FTI %v / DES %v virtual, %d transitions\n",
		res.Sim.VirtualFTI, res.Sim.VirtualDES, res.Sim.Transitions)
	fmt.Printf("control plane       : %d bytes, %d writes, %d flowmods, %d routes, %d packet-ins, %d stats\n",
		res.ControlBytes, res.ControlWrites, res.FlowModsApplied,
		res.RouteInstalls, res.PacketIns, res.StatsQueries)
	fmt.Printf("rate solver         : %d solves, %d components (largest %d flows), %d parallel, workers=%d (naive=%v)\n",
		res.Solves, res.Solver.Components, res.Solver.MaxComponentFlows,
		res.Solver.ParallelSolves, res.SolverWorkers, *naive)
	mem := res.Solver.Mem
	fmt.Printf("solver memory       : %d flow slots (%d live, %d free), %d links, arenas %d B paths + %d B members, %d B scratch\n",
		mem.FlowSlots, mem.LiveFlows, mem.FreeFlows, mem.LinkSlots,
		mem.PathArenaBytes, mem.MemberArenaBytes, mem.ScratchBytes)
	if res.MeanPathLatency > 0 {
		fmt.Printf("path latency        : %v rate-weighted mean one-way\n", res.MeanPathLatency)
	}
	if len(res.CaptureFiles) > 0 {
		fmt.Printf("capture             : %d pcapng traces in %s\n", len(res.CaptureFiles), *pcapDir)
	}
	if *trafficS != "" || *capacity != "" {
		// Workload summary over the second half of the run (the same
		// steady window SteadyAggregateRx uses): goodput tracking under
		// capacity churn, and the min-host-rx floor distribution that
		// incast bursts carve out.
		half := end / 2
		rx := res.AggregateRx
		fmt.Printf("workload            : traffic=%s capacity=%s (%d injections)\n",
			run.Traffic, orNone(run.Capacity), res.Injections)
		fmt.Printf("  goodput (2nd half): mean %v", horse.Rate(rx.MeanBetween(half, end)))
		if min, ok := rx.MinBetween(half, end); ok {
			fmt.Printf(", min %v at %v", horse.Rate(min.Value), min.At)
		}
		fmt.Println()
		if min, ok := res.MinHostRx.MinBetween(half, end); ok {
			p5, _ := res.MinHostRx.PercentileBetween(half, end, 0.05)
			med, _ := res.MinHostRx.PercentileBetween(half, end, 0.50)
			fmt.Printf("  min host rx floor : %v at %v (p5 %v, median %v)\n",
				horse.Rate(min.Value), min.At, horse.Rate(p5), horse.Rate(med))
		}
	}
	if *fail {
		rx := res.AggregateRx
		pre := rx.MeanBetween(failAt-horse.Second, failAt)
		post := rx.MeanBetween(end-horse.Second, end)
		fmt.Printf("failure injection   : agg-0-0 <-> core-0-0 down @%v, up @%v (%d injections)\n",
			failAt, healAt, res.Injections)
		rep, ok := rx.RepairAfter(failAt, healAt, stats.DefaultRepairFrac)
		if pre <= 0 || !ok {
			fmt.Printf("  no pre-failure baseline: the control plane had not converged by %v; use a longer -dur\n", failAt)
			return
		}
		fmt.Printf("  pre-failure rate  : %v\n", horse.Rate(pre))
		fmt.Printf("  dip               : %v at %v (-%.1f%%)\n",
			horse.Rate(rep.Dip.Value), rep.Dip.At, 100*(pre-rep.Dip.Value)/pre)
		if rep.Recovered {
			fmt.Printf("  repaired          : %v at %v (%v after failure, before link-up)\n",
				horse.Rate(rep.Rec.Value), rep.Rec.At, rep.Latency)
		}
		fmt.Printf("  degraded steady   : %v (%.1f%% of pre-failure)\n", horse.Rate(rep.Degraded), 100*rep.Degraded/pre)
		fmt.Printf("  post-repair rate  : %v (%.1f%% of pre-failure)\n", horse.Rate(post), 100*post/pre)
	}
}
