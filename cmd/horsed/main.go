// Command horsed is the experiment campaign daemon: a long-running
// service that accepts sweep specifications over an HTTP JSON API,
// expands them into the cross-product of runs (topology × scenario ×
// traffic × seed × solver workers), executes them on a bounded worker
// pool, and persists per-run results and pcapng capture artifacts under
// a campaign directory.
//
// Every run goes through internal/spec — the same parsing and wiring
// cmd/horse uses — so a submitted run is the identical experiment to
// the equivalent CLI invocation.
//
// Usage:
//
//	horsed [-listen :7600] [-data campaigns] [-runs 2] [-v]
//
// Submit a sweep and poll it:
//
//	curl -X POST localhost:7600/campaigns -d '{
//	  "name": "smoke",
//	  "topos": ["fattree:4", "linear:4"],
//	  "scenarios": ["ecmp5", "reactive"],
//	  "traffics": ["permutation"],
//	  "seeds": [1, 2],
//	  "base": {"dur": "5s", "pacing": 40},
//	  "capture": true
//	}'
//	curl localhost:7600/campaigns/c0001-smoke
//	curl localhost:7600/campaigns/c0001-smoke/runs/0
//
// Or skip the polling: cmd/horsectl tails the campaign's SSE event
// stream (`horsectl watch -until done c0001-smoke`) and fetches the
// cross-run analysis (`horsectl analyze c0001-smoke`).
//
// SIGTERM drains gracefully: in-flight runs finish and persist their
// results, unstarted runs are recorded as canceled, and every SSE
// stream ends after its campaign's final event.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaign"
)

func main() {
	var (
		listen  = flag.String("listen", ":7600", "HTTP management API address")
		dataDir = flag.String("data", "campaigns", "campaign data directory (results + artifacts)")
		runs    = flag.Int("runs", 2, "concurrent experiment runs")
		drainTO = flag.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for in-flight runs")
		verbose = flag.Bool("v", false, "log campaign progress")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "horsed: "+format+"\n", args...)
	}
	runnerLog := logf
	if !*verbose {
		runnerLog = nil
	}
	if err := os.MkdirAll(*dataDir, 0o755); err != nil {
		logf("%v", err)
		os.Exit(1)
	}
	srv := campaign.NewServer(&campaign.Runner{
		Dir:         *dataDir,
		Concurrency: *runs,
		Logf:        runnerLog,
	}, runnerLog)

	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logf("listening on %s, data in %s, %d concurrent runs", *listen, *dataDir, *runs)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		// ListenAndServe only returns on failure (bad address, port in
		// use); nothing is draining yet.
		logf("%v", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logf("shutdown requested; draining (timeout %v)", *drainTO)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	// Drain the pool and shut the HTTP server down concurrently: open
	// SSE streams only end when their campaigns publish their final
	// event, so Shutdown (which waits for active connections) must not
	// run before the pool drain that closes those streams.
	httpDone := make(chan error, 1)
	go func() { httpDone <- httpSrv.Shutdown(drainCtx) }()
	if err := srv.Drain(drainCtx); err != nil {
		logf("%v", err)
		os.Exit(1)
	}
	if err := <-httpDone; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logf("http shutdown: %v", err)
	}
	logf("drained cleanly")
}
