// Command fig3 regenerates Figure 3 of the paper: wall-clock execution
// time of the three-TE demonstration suite on Horse versus a packet-level
// real-time emulation baseline (the paper's Mininet), for fat-tree sizes
// k in {4, 6, 8}.
//
// Usage:
//
//	fig3 [-k 4,6,8] [-dur 10s] [-pacing 1.0] [-skip-baseline] [-fail]
//
// With -pacing 1.0 (default) Horse's FTI mode is paper-faithful real
// time; larger values compress control plane wall time proportionally on
// BOTH systems, preserving the ratio.
//
// With -fail, every run (on both systems) takes an agg-core link failure
// at dur/3 repaired at 2*dur/3, and two extra columns report each
// system's repair latency — the time from the post-failure throughput dip
// until delivery returns to the degraded steady rate, in virtual time —
// plus their ratio. Repair-latency speedup is the stronger headline than
// steady-state speedup: Horse measures the control plane's actual repair
// conversation, while the baseline pays its calibrated reconvergence
// delay in real time.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// failFrom and failTo name the victim cable of -fail runs; the same
// agg-core cable exists in the BGP, SDN and baseline fat-trees.
const (
	failFrom = "agg-0-0"
	failTo   = "core-0-0"
)

func main() {
	var (
		kList        = flag.String("k", "4,6,8", "comma-separated fat-tree arities")
		dur          = flag.Duration("dur", 10*time.Second, "virtual duration per TE experiment")
		pacing       = flag.Float64("pacing", 1.0, "FTI pacing (1.0 = paper-faithful real time)")
		skipBaseline = flag.Bool("skip-baseline", false, "run only Horse")
		seed         = flag.Int64("seed", 42, "traffic permutation seed")
		naive        = flag.Bool("naive-solver", false, "use the from-scratch rate solver (ablation baseline)")
		workers      = flag.Int("solver-workers", 0, "rate solver worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
		fail         = flag.Bool("fail", false, "inject an agg-core link failure at dur/3 (repair at 2*dur/3) into every run and report repair latency")
		pcapDir      = flag.String("pcap", "", "record each Horse run's control plane as pcapng traces under DIR/k<K>-<te>/")
	)
	flag.Parse()

	fmt.Printf("# Figure 3: execution time of the demonstration (3 TE approaches, %v virtual each, pacing %.1f, fail=%v)\n", *dur, *pacing, *fail)
	header := fmt.Sprintf("%-4s %-14s %-14s", "k", "horse-setup", "horse-exec")
	if *fail {
		header += fmt.Sprintf(" %-13s", "horse-repair")
	}
	if !*skipBaseline {
		header += fmt.Sprintf(" %-14s", "baseline-exec")
		if *fail {
			header += fmt.Sprintf(" %-13s", "base-repair")
		}
		header += fmt.Sprintf(" %-8s", "ratio")
		if *fail {
			header += fmt.Sprintf(" %-12s", "repair-ratio")
		}
	}
	fmt.Println(header)

	for _, ks := range strings.Split(*kList, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(ks))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad k %q: %v\n", ks, err)
			os.Exit(1)
		}
		horseSetup, horseExec, horseRepair := runHorseSuite(k, *dur, *pacing, *seed, *naive, *workers, *fail, *pcapDir)
		line := fmt.Sprintf("%-4d %-14v %-14v", k, horseSetup.Round(time.Millisecond), horseExec.Round(time.Millisecond))
		if *fail {
			line += fmt.Sprintf(" %-13v", horseRepair.Round(time.Millisecond))
		}
		if *skipBaseline {
			fmt.Println(line)
			continue
		}
		baseExec, baseRepair := runBaselineSuite(k, *dur, *pacing, *seed, *fail)
		line += fmt.Sprintf(" %-14v", baseExec.Round(time.Millisecond))
		if *fail {
			line += fmt.Sprintf(" %-13v", baseRepair.Round(time.Millisecond))
		}
		// The denominators can legitimately be zero (no repair observed,
		// a degenerate run); the shared stats.Ratio guard keeps NaN/Inf
		// out of the table.
		if r, ok := stats.Ratio(float64(baseExec), float64(horseExec)); ok {
			line += fmt.Sprintf(" %-8.2f", r)
		} else {
			line += fmt.Sprintf(" %-8s", "n/a")
		}
		if *fail {
			if r, ok := stats.Ratio(float64(baseRepair), float64(horseRepair)); ok && baseRepair > 0 {
				line += fmt.Sprintf(" %-12.2f", r)
			} else {
				line += fmt.Sprintf(" %-12s", "n/a")
			}
		}
		fmt.Println(line)
	}
}

// runHorseSuite executes the three TE experiments on Horse and returns
// (topology setup, execution) wall times plus — under -fail — the mean
// repair latency in virtual time.
func runHorseSuite(k int, dur time.Duration, pacing float64, seed int64, naive bool, workers int, fail bool, pcapDir string) (setup, exec, repair time.Duration) {
	until := core.FromDuration(dur)
	failAt, healAt := until/3, 2*until/3
	var repairs, repaired int
	var repairSum core.Time
	for _, te := range []string{"bgp-ecmp", "hedera", "ecmp5"} {
		// The three TE runs are ordinary spec.Runs — the same ones a
		// horsed campaign over topos=[fattree:k] × scenarios=[...]
		// would expand to.
		run := spec.Run{
			Topo:          fmt.Sprintf("fattree:%d", k),
			Scenario:      te,
			Traffic:       fmt.Sprintf("permutation:%d", seed),
			Dur:           spec.Duration(dur),
			Pacing:        pacing,
			NaiveSolver:   naive,
			SolverWorkers: workers,
		}
		if fail {
			// Sample finely enough to resolve the dip and repair.
			run.SampleInterval = spec.Duration(10 * time.Millisecond)
		}
		if pcapDir != "" {
			run.CaptureDir = filepath.Join(pcapDir, fmt.Sprintf("k%d-%s", k, te))
		}
		exp, err := run.Experiment()
		if err != nil {
			fmt.Fprintf(os.Stderr, "k=%d %s: %v\n", k, te, err)
			os.Exit(1)
		}
		if fail {
			if err := exp.At(failAt).LinkDown(failFrom, failTo); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := exp.At(healAt).LinkUp(failFrom, failTo); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		res, err := exp.Run(until)
		if err != nil {
			fmt.Fprintf(os.Stderr, "k=%d %s: %v\n", k, te, err)
			os.Exit(1)
		}
		setup += res.SetupWall
		exec += res.Sim.WallTotal
		repairNote := ""
		if fail {
			repairs++
			if rep, ok := res.AggregateRx.RepairAfter(failAt, healAt, stats.DefaultRepairFrac); ok && rep.Recovered {
				repaired++
				repairSum += rep.Latency
				repairNote = fmt.Sprintf(" repair=%v", rep.Latency)
			} else {
				repairNote = " repair=n/a"
			}
		}
		fmt.Fprintf(os.Stderr, "  horse k=%d %-9s wall=%-10v steady-rx=%v%s\n",
			k, te, res.Sim.WallTotal.Round(time.Millisecond), res.SteadyAggregateRx(), repairNote)
	}
	if repaired > 0 {
		repair = (repairSum / core.Time(repaired)).Duration()
	}
	return setup, exec, repair
}

// runBaselineSuite executes the equivalent three runs on the real-time
// emulator: each pays topology setup plus the experiment duration 1:1
// with the wall clock (scaled by the same pacing factor). Under -fail the
// same agg-core cable dies at dur/3 and heals at 2*dur/3, and the mean
// repair latency (converted to virtual time via the pacing factor, so it
// compares directly with Horse's) is returned alongside.
func runBaselineSuite(k int, dur time.Duration, pacing float64, seed int64, fail bool) (exec, repair time.Duration) {
	var repairSum time.Duration
	repaired := 0
	for te := 0; te < 3; te++ {
		g, err := topo.FatTree(topo.FatTreeOpts{K: k})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		em, err := baseline.New(g, baseline.Config{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		wallDur := time.Duration(float64(dur) / pacing)
		var injs []baseline.Injection
		var failAt, healAt time.Duration
		if fail {
			cable := failCable(g)
			failAt, healAt = wallDur/3, 2*wallDur/3
			injs = append(injs,
				baseline.Injection{At: failAt, Link: cable, Down: true},
				baseline.Injection{At: healAt, Link: cable, Down: false})
		}
		st := em.Run(flowsFor(g, seed), wallDur, injs...)
		em.Close()
		exec += em.SetupTime + st.Wall
		repairNote := ""
		if fail {
			if lat, ok := st.RepairLatency(failAt, healAt, stats.DefaultRepairFrac); ok {
				repaired++
				lat = time.Duration(float64(lat) * pacing) // wall -> virtual
				repairSum += lat
				repairNote = fmt.Sprintf(" repair=%v", lat.Round(time.Millisecond))
			} else {
				repairNote = " repair=n/a"
			}
		}
		fmt.Fprintf(os.Stderr, "  baseline k=%d run %d setup=%v %v%s\n", k, te+1,
			em.SetupTime.Round(time.Millisecond), st, repairNote)
	}
	if repaired > 0 {
		repair = repairSum / time.Duration(repaired)
	}
	return exec, repair
}

// failCable resolves the victim cable in the baseline's topology.
func failCable(g *topo.Graph) core.LinkID {
	a, ok := g.NodeByName(failFrom)
	if !ok {
		fmt.Fprintf(os.Stderr, "no node %q in the baseline fat-tree\n", failFrom)
		os.Exit(1)
	}
	b, ok := g.NodeByName(failTo)
	if !ok {
		fmt.Fprintf(os.Stderr, "no node %q in the baseline fat-tree\n", failTo)
		os.Exit(1)
	}
	l := g.CableBetween(a.ID, b.ID)
	if l == nil {
		fmt.Fprintf(os.Stderr, "no cable between %q and %q\n", failFrom, failTo)
		os.Exit(1)
	}
	return l.ID
}

func flowsFor(g *topo.Graph, seed int64) []baseline.FlowSpec {
	hosts := g.Hosts()
	specs := traffic.Permutation(seed, 1*core.Gbps, 0, 0)(len(hosts))
	out := make([]baseline.FlowSpec, 0, len(specs))
	for _, s := range specs {
		src := hosts[s.SrcHost]
		dst := hosts[s.DstHost]
		out = append(out, baseline.FlowSpec{
			Tuple: core.FiveTuple{Src: src.IP, Dst: dst.IP, Proto: s.Proto,
				SrcPort: s.SrcPort, DstPort: s.DstPort},
			Src: src.ID, Dst: dst.ID, Rate: s.Rate,
		})
	}
	return out
}
