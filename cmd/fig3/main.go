// Command fig3 regenerates Figure 3 of the paper: wall-clock execution
// time of the three-TE demonstration suite on Horse versus a packet-level
// real-time emulation baseline (the paper's Mininet), for fat-tree sizes
// k in {4, 6, 8}.
//
// Usage:
//
//	fig3 [-k 4,6,8] [-dur 10s] [-pacing 1.0] [-skip-baseline]
//
// With -pacing 1.0 (default) Horse's FTI mode is paper-faithful real
// time; larger values compress control plane wall time proportionally on
// BOTH systems, preserving the ratio.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	horse "repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func main() {
	var (
		kList        = flag.String("k", "4,6,8", "comma-separated fat-tree arities")
		dur          = flag.Duration("dur", 10*time.Second, "virtual duration per TE experiment")
		pacing       = flag.Float64("pacing", 1.0, "FTI pacing (1.0 = paper-faithful real time)")
		skipBaseline = flag.Bool("skip-baseline", false, "run only Horse")
		seed         = flag.Int64("seed", 42, "traffic permutation seed")
		naive        = flag.Bool("naive-solver", false, "use the from-scratch rate solver (ablation baseline)")
	)
	flag.Parse()

	fmt.Printf("# Figure 3: execution time of the demonstration (3 TE approaches, %v virtual each, pacing %.1f)\n", *dur, *pacing)
	fmt.Printf("%-4s %-14s %-14s %-14s %-8s\n", "k", "horse-setup", "horse-exec", "baseline-exec", "ratio")

	for _, ks := range strings.Split(*kList, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(ks))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad k %q: %v\n", ks, err)
			os.Exit(1)
		}
		horseSetup, horseExec := runHorseSuite(k, *dur, *pacing, *seed, *naive)
		line := fmt.Sprintf("%-4d %-14v %-14v", k, horseSetup.Round(time.Millisecond), horseExec.Round(time.Millisecond))
		if *skipBaseline {
			fmt.Println(line)
			continue
		}
		baseExec := runBaselineSuite(k, *dur, *pacing, *seed)
		fmt.Printf("%s %-14v %-8.2f\n", line, baseExec.Round(time.Millisecond),
			float64(baseExec)/float64(horseExec))
	}
}

// runHorseSuite executes the three TE experiments on Horse and returns
// (topology setup, execution) wall times.
func runHorseSuite(k int, dur time.Duration, pacing float64, seed int64, naive bool) (setup, exec time.Duration) {
	until := core.FromDuration(dur)
	for _, te := range []string{"bgp-ecmp", "hedera", "ecmp5"} {
		cfg := horse.Config{Pacing: pacing, NaiveSolver: naive}
		exp := horse.NewExperiment(cfg)
		var (
			g   *horse.Topology
			err error
		)
		switch te {
		case "bgp-ecmp":
			g, err = horse.FatTree(k, horse.BGP())
			if err == nil {
				exp.SetTopology(g)
				exp.UseBGP(horse.BGPOptions{ECMP: true})
			}
		case "hedera":
			g, err = horse.FatTree(k, horse.SDN())
			if err == nil {
				exp.SetTopology(g)
				exp.UseSDN(horse.AppHedera(5 * horse.Second))
			}
		case "ecmp5":
			g, err = horse.FatTree(k, horse.SDN())
			if err == nil {
				exp.SetTopology(g)
				exp.UseSDN(horse.AppECMP5())
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "k=%d %s: %v\n", k, te, err)
			os.Exit(1)
		}
		if err := exp.SendPermutation(seed, 1*horse.Gbps, 0, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := exp.Run(until)
		if err != nil {
			fmt.Fprintf(os.Stderr, "k=%d %s: %v\n", k, te, err)
			os.Exit(1)
		}
		setup += res.SetupWall
		exec += res.Sim.WallTotal
		fmt.Fprintf(os.Stderr, "  horse k=%d %-9s wall=%-10v steady-rx=%v\n",
			k, te, res.Sim.WallTotal.Round(time.Millisecond), res.SteadyAggregateRx())
	}
	return setup, exec
}

// runBaselineSuite executes the equivalent three runs on the real-time
// emulator: each pays topology setup plus the experiment duration 1:1
// with the wall clock (scaled by the same pacing factor).
func runBaselineSuite(k int, dur time.Duration, pacing float64, seed int64) time.Duration {
	var total time.Duration
	for te := 0; te < 3; te++ {
		g, err := topo.FatTree(topo.FatTreeOpts{K: k})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		em, err := baseline.New(g, baseline.Config{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st := em.Run(flowsFor(g, seed), time.Duration(float64(dur)/pacing))
		em.Close()
		total += em.SetupTime + st.Wall
		fmt.Fprintf(os.Stderr, "  baseline k=%d run %d setup=%v %v\n", k, te+1,
			em.SetupTime.Round(time.Millisecond), st)
	}
	return total
}

func flowsFor(g *topo.Graph, seed int64) []baseline.FlowSpec {
	hosts := g.Hosts()
	specs := traffic.Permutation(seed, 1*core.Gbps, 0, 0)(len(hosts))
	out := make([]baseline.FlowSpec, 0, len(specs))
	for _, s := range specs {
		src := hosts[s.SrcHost]
		dst := hosts[s.DstHost]
		out = append(out, baseline.FlowSpec{
			Tuple: core.FiveTuple{Src: src.IP, Dst: dst.IP, Proto: s.Proto,
				SrcPort: s.SrcPort, DstPort: s.DstPort},
			Src: src.ID, Dst: dst.ID, Rate: s.Rate,
		})
	}
	return out
}
