// Command pcapcheck validates and summarizes the pcapng traces the
// capture subsystem writes: it fully walks the block structure, checks
// that delivery timestamps never run backwards, verifies TCP sequence
// continuity across every synthesized stream, re-decodes each BGP and
// OpenFlow message, and prints a capture.Summary. The capture-validate
// CI job runs it over freshly recorded experiments; -want-update and
// -want-flowmod turn "the trace actually contains the control plane
// conversation" into an exit status.
//
// Usage:
//
//	pcapcheck [-want-update] [-want-flowmod] [-q] FILE_OR_DIR...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/capture"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its streams and exit code exposed for testing:
// 0 = every gate passed, 1 = validation failure, 2 = usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pcapcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		wantUpdate  = fs.Bool("want-update", false, "fail unless at least one BGP UPDATE announcing a prefix decodes")
		wantFlowMod = fs.Bool("want-flowmod", false, "fail unless at least one OpenFlow FLOW_MOD decodes")
		quiet       = fs.Bool("q", false, "suppress the summary; print only errors")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: pcapcheck [-want-update] [-want-flowmod] FILE_OR_DIR...")
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "pcapcheck:", err)
		return 1
	}

	var paths []string
	for _, arg := range fs.Args() {
		info, err := os.Stat(arg)
		if err != nil {
			return fail(err)
		}
		if !info.IsDir() {
			paths = append(paths, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(p string, d os.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(p, ".pcapng") {
				paths = append(paths, p)
			}
			return err
		})
		if err != nil {
			return fail(err)
		}
	}
	if len(paths) == 0 {
		return fail(fmt.Errorf("no .pcapng files under %s", strings.Join(fs.Args(), " ")))
	}

	var traces []*capture.Trace
	for _, p := range paths {
		tr, err := capture.ReadFile(p)
		if err != nil {
			return fail(err)
		}
		traces = append(traces, tr)
	}
	sum, err := capture.Summarize(traces...)
	if err != nil {
		return fail(err)
	}
	if !*quiet {
		fmt.Fprintf(stdout, "%d traces, %s", len(traces), sum)
	}
	if sum.Messages == 0 {
		return fail(fmt.Errorf("no control plane messages decoded from %d traces", len(traces)))
	}
	if *wantUpdate && sum.Updates == 0 {
		return fail(fmt.Errorf("no BGP UPDATE decoded (traces hold %d messages)", sum.Messages))
	}
	if *wantFlowMod && sum.FlowMods == 0 {
		return fail(fmt.Errorf("no OpenFlow FLOW_MOD decoded (traces hold %d messages)", sum.Messages))
	}
	fmt.Fprintf(stdout, "ok: %d files, %d sessions, %d messages validated\n", len(traces), len(sum.Sessions), sum.Messages)
	return 0
}
