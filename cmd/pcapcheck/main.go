// Command pcapcheck validates and summarizes the pcapng traces the
// capture subsystem writes: it fully walks the block structure, checks
// that delivery timestamps never run backwards, verifies TCP sequence
// continuity across every synthesized stream, re-decodes each BGP and
// OpenFlow message, and prints a capture.Summary. The capture-validate
// CI job runs it over freshly recorded experiments; -want-update and
// -want-flowmod turn "the trace actually contains the control plane
// conversation" into an exit status.
//
// Usage:
//
//	pcapcheck [-want-update] [-want-flowmod] [-q] FILE_OR_DIR...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/capture"
)

func main() {
	var (
		wantUpdate  = flag.Bool("want-update", false, "fail unless at least one BGP UPDATE announcing a prefix decodes")
		wantFlowMod = flag.Bool("want-flowmod", false, "fail unless at least one OpenFlow FLOW_MOD decodes")
		quiet       = flag.Bool("q", false, "suppress the summary; print only errors")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: pcapcheck [-want-update] [-want-flowmod] FILE_OR_DIR...")
		os.Exit(2)
	}

	var paths []string
	for _, arg := range flag.Args() {
		info, err := os.Stat(arg)
		if err != nil {
			fatal(err)
		}
		if !info.IsDir() {
			paths = append(paths, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(p string, d os.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(p, ".pcapng") {
				paths = append(paths, p)
			}
			return err
		})
		if err != nil {
			fatal(err)
		}
	}
	if len(paths) == 0 {
		fatal(fmt.Errorf("no .pcapng files under %s", strings.Join(flag.Args(), " ")))
	}

	var traces []*capture.Trace
	for _, p := range paths {
		tr, err := capture.ReadFile(p)
		if err != nil {
			fatal(err)
		}
		traces = append(traces, tr)
	}
	sum, err := capture.Summarize(traces...)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Printf("%d traces, %s", len(traces), sum)
	}
	if sum.Messages == 0 {
		fatal(fmt.Errorf("no control plane messages decoded from %d traces", len(traces)))
	}
	if *wantUpdate && sum.Updates == 0 {
		fatal(fmt.Errorf("no BGP UPDATE decoded (traces hold %d messages)", sum.Messages))
	}
	if *wantFlowMod && sum.FlowMods == 0 {
		fatal(fmt.Errorf("no OpenFlow FLOW_MOD decoded (traces hold %d messages)", sum.Messages))
	}
	fmt.Printf("ok: %d files, %d sessions, %d messages validated\n", len(traces), len(sum.Sessions), sum.Messages)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcapcheck:", err)
	os.Exit(1)
}
