package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/spec"
)

// bgpTrace records one two-routers BGP experiment with capture enabled
// and returns the pcap directory. The session holds BGP UPDATEs and no
// OpenFlow messages, which is exactly what the gate-flag tests need.
// The experiment runs once and is shared by every test.
var bgpTrace = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "pcapcheck-test-*")
	if err != nil {
		return "", err
	}
	r := spec.Run{
		Topo:     "two-routers",
		Scenario: "bgp",
		Traffic:  "stride:1",
		Dur:      spec.Duration(10 * time.Second),
		Pacing:   40, // compress the FTI windows: ~250ms of wall time
	}
	r.CaptureDir = dir
	if _, err := r.Execute(); err != nil {
		os.RemoveAll(dir)
		return "", err
	}
	return dir, nil
})

func traceDir(t *testing.T) string {
	t.Helper()
	dir, err := bgpTrace()
	if err != nil {
		t.Fatalf("recording the shared BGP trace: %v", err)
	}
	return dir
}

func TestMain(m *testing.M) {
	code := m.Run()
	if dir, err := bgpTrace(); err == nil {
		os.RemoveAll(dir)
	}
	os.Exit(code)
}

// TestRunValidatesBGPTrace pins exit 0 on a healthy trace, with and
// without the -want-update gate, and the summary output.
func TestRunValidatesBGPTrace(t *testing.T) {
	dir := traceDir(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "ok:") {
		t.Errorf("stdout = %q, want an ok line", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-want-update", "-q", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("-want-update on a BGP trace = %d, stderr: %s", code, stderr.String())
	}
	// -q suppresses the summary but not the final ok line.
	if strings.Contains(stdout.String(), "traces,") {
		t.Errorf("-q still printed the summary: %q", stdout.String())
	}
}

// TestRunWantFlowModFails pins exit 1 when the gate demands OpenFlow
// messages a BGP-only trace cannot contain.
func TestRunWantFlowModFails(t *testing.T) {
	dir := traceDir(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-want-flowmod", dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("-want-flowmod on a BGP trace = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "no OpenFlow FLOW_MOD") {
		t.Errorf("stderr = %q, want a FLOW_MOD explanation", stderr.String())
	}
}

// TestRunSingleFile pins that a file argument works like a directory.
func TestRunSingleFile(t *testing.T) {
	dir := traceDir(t)
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("trace dir: %v, %d entries", err, len(entries))
	}
	var stdout, stderr bytes.Buffer
	file := filepath.Join(dir, entries[0].Name())
	if code := run([]string{"-want-update", file}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(%s) = %d, stderr: %s", file, code, stderr.String())
	}
}

// TestRunUsageAndErrors pins the exit-code contract for the failure
// paths: no args (2), bad flag (2), missing path (1), a directory with
// no traces (1), and a file that is not pcapng (1).
func TestRunUsageAndErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("run with no args = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Errorf("stderr = %q, want usage", stderr.String())
	}

	stderr.Reset()
	if code := run([]string{"-bogus-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("run with a bad flag = %d, want 2", code)
	}

	stderr.Reset()
	if code := run([]string{"/no/such/path"}, &stdout, &stderr); code != 1 {
		t.Errorf("run with a missing path = %d, want 1", code)
	}

	stderr.Reset()
	empty := t.TempDir()
	if code := run([]string{empty}, &stdout, &stderr); code != 1 {
		t.Errorf("run on an empty dir = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "no .pcapng files") {
		t.Errorf("stderr = %q", stderr.String())
	}

	stderr.Reset()
	junk := filepath.Join(empty, "junk.pcapng")
	if err := os.WriteFile(junk, []byte("not a pcapng block"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{junk}, &stdout, &stderr); code != 1 {
		t.Errorf("run on a corrupt trace = %d, want 1", code)
	}
}

// TestRunValidatesPackedWANTrace replays a multi-AS full-table run:
// the capture holds packed UPDATEs (many NLRIs per message), and
// pcapcheck must fully re-decode them, pass the -want-update gate, and
// report the storm volume in the summary.
func TestRunValidatesPackedWANTrace(t *testing.T) {
	dir := t.TempDir()
	r := spec.Run{
		Topo:           "wan:multi:7:2:3:120",
		Scenario:       "bgp-rr",
		Traffic:        "none",
		Dur:            spec.Duration(2 * time.Second),
		Pacing:         20,
		AdvertiseDelay: spec.Duration(10 * time.Millisecond),
	}
	r.CaptureDir = dir
	if _, err := r.Execute(); err != nil {
		t.Fatalf("recording the multi-AS trace: %v", err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-want-update", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	m := regexp.MustCompile(`updates \([0-9.]+/s, (\d+) prefixes`).FindStringSubmatch(stdout.String())
	if m == nil {
		t.Fatalf("summary missing the announced-prefix count: %q", stdout.String())
	}
	if n, _ := strconv.Atoi(m[1]); n < 120 {
		t.Errorf("summary reports %d announced prefixes, want >= 120 (the synthetic table)", n)
	}
}
