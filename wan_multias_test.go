package horse

import (
	"testing"
	"time"

	"repro/internal/topo"
)

// runMultiAS runs the Internet-scale scenario: two eBGP-peered 4-PoP
// backbones where the edge ASes originate table synthetic /24s between
// them, under route reflection with latency-delayed delivery and an
// explicit MRAI batching window.
func runMultiAS(t *testing.T, table int) (*Result, *Experiment) {
	t.Helper()
	g, err := WANMultiAS(2, 4, 11, DelayScale(1), FullTable(table))
	if err != nil {
		t.Fatal(err)
	}
	exp := NewExperiment(wanConfig())
	exp.SetTopology(g)
	exp.UseBGP(BGPOptions{
		RouteReflection: true,
		LinkLatency:     true,
		AdvertiseDelay:  10 * time.Millisecond,
	})
	if err := exp.SendPermutation(7, 200*Mbps, 0, 0); err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(8 * Second)
	if err != nil {
		t.Fatal(err)
	}
	return res, exp
}

// totalUpdatesSent sums UPDATE messages across every speaker in the run.
func totalUpdatesSent(exp *Experiment) uint64 {
	var total uint64
	for _, r := range exp.Manager().G.Routers() {
		if sp := exp.Manager().Speaker(r.ID); sp != nil {
			total += sp.Stats.UpdatesSent.Load()
		}
	}
	return total
}

// TestWANMultiASFullTableConverges is the multi-AS acceptance test: a
// full-table-sized RIB originated at the edge ASes propagates across
// eBGP peering links and per-AS reflector hierarchies until every
// cross-AS flow goes active — and the whole distribution takes
// O(attr-groups × size-splits) UPDATE messages, not O(prefixes).
func TestWANMultiASFullTableConverges(t *testing.T) {
	const table = 1200
	res, exp := runMultiAS(t, table)
	allActive(t, res, "multi-as")
	if _, ok := res.ConvergedAt(0.95); !ok {
		t.Fatal("multi-AS full-table run never converged")
	}
	// Every router must have learned the synthetic table (8 routers,
	// each installing at least the remote-AS half of it).
	if res.RouteInstalls < uint64(table) {
		t.Fatalf("RouteInstalls = %d, want >= %d (full table not distributed)", res.RouteInstalls, table)
	}
	// The packing criterion: a per-prefix control plane would push
	// roughly sessions × prefixes UPDATEs through the mesh. Require at
	// least a 20x reduction against that floor.
	g := exp.Manager().G
	sessions := 0
	for _, l := range g.Links {
		if l.ID > l.Reverse {
			continue
		}
		if g.Nodes[l.From].Kind == topo.Router && g.Nodes[l.To].Kind == topo.Router {
			sessions += 2 // one speaker per direction
		}
	}
	perPrefixFloor := uint64(sessions) * uint64(table)
	got := totalUpdatesSent(exp)
	if got == 0 {
		t.Fatal("no UPDATEs sent")
	}
	if got*20 > perPrefixFloor {
		t.Fatalf("total UPDATEs = %d across %d sessions for %d prefixes — packing regressed (per-prefix floor %d)",
			got, sessions, table, perPrefixFloor)
	}
}

// TestWANMultiASUpdateScaling pins the scaling curve: growing the
// synthetic table 6x may grow the UPDATE count only by the message-size
// split factor (1200 /24s fit in ~2 messages per attr group), never
// linearly with the prefix count.
func TestWANMultiASUpdateScaling(t *testing.T) {
	_, small := runMultiAS(t, 200)
	_, large := runMultiAS(t, 1200)
	su, lu := totalUpdatesSent(small), totalUpdatesSent(large)
	if su == 0 || lu == 0 {
		t.Fatalf("no UPDATE traffic: small=%d large=%d", su, lu)
	}
	if lu > 4*su {
		t.Fatalf("UPDATE count scaled with prefixes: %d at 200 prefixes vs %d at 1200 (want <= 4x growth for 6x prefixes)", su, lu)
	}
}
