// Quickstart: the smallest complete Horse experiment.
//
// A k=4 fat-tree datacenter with an emulated OpenFlow controller running
// proactive 5-tuple ECMP; every host sends one 1 Gbps UDP flow to another
// host (the paper's demo workload). The run prints the aggregate rate
// arriving at the hosts and how the hybrid clock spent its time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	horse "repro"
)

func main() {
	// 1. Topology: 4-pod fat-tree, 16 hosts, 1 Gbps links.
	topo, err := horse.FatTree(4, horse.SDN())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Experiment: default hybrid clock (1 ms FTI steps, 500 ms quiet
	// timeout, real-time pacing).
	exp := horse.NewExperiment(horse.Config{})
	exp.SetTopology(topo)

	// 3. Control plane: emulated SDN controller with proactive
	// 5-tuple-hash ECMP rules.
	exp.UseSDN(horse.AppECMP5())

	// 4. Workload: the demo's random permutation, 1 Gbps UDP per host.
	if err := exp.SendPermutation(42, 1*horse.Gbps, 0, 0); err != nil {
		log.Fatal(err)
	}

	// 5. Run 20 virtual seconds.
	res, err := exp.Run(20 * horse.Second)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hosts           : %d (offered load %d Gbps)\n",
		res.Topology.Hosts, res.Topology.Hosts)
	fmt.Printf("steady rx       : %v\n", res.SteadyAggregateRx())
	fmt.Printf("wall time       : %v for %v virtual\n",
		res.Sim.WallTotal.Round(time.Millisecond), res.Sim.VirtualEnd)
	fmt.Printf("clock           : FTI %v / DES %v, %d transitions\n",
		res.Sim.VirtualFTI, res.Sim.VirtualDES, res.Sim.Transitions)
	fmt.Printf("control plane   : %d OpenFlow flow-mods over %d bytes\n",
		res.FlowModsApplied, res.ControlBytes)
	fmt.Printf("rate solver     : %d incremental solves\n", res.Solves)
}
