// Capture example: record the control plane of a WAN convergence run as
// pcapng traces, then read the traces back with the in-repo reader and
// reconstruct the convergence story from the packets alone.
//
// The CM's channel taps see every control byte; with capture enabled
// each BGP session becomes one Wireshark-dissectable TCP/179
// conversation whose packets are stamped with *delivery* virtual time —
// after the link's propagation delay — so the UPDATE arrival times in
// the trace ARE the convergence timeline ("who withdrew what, when").
//
//	go run ./examples/capture
//	go run ./examples/capture -topo tier1 -dur 15s
//	wireshark <dir>/bgp-*.pcapng   # same bytes, stock dissectors
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	horse "repro"
	"repro/internal/capture"
)

func main() {
	var (
		topoName = flag.String("topo", "abilene", "embedded WAN topology: abilene, tier1")
		dur      = flag.Duration("dur", 10*time.Second, "virtual duration")
		pacing   = flag.Float64("pacing", 20, "FTI pacing")
		dir      = flag.String("dir", "", "capture directory (default: a fresh temp dir)")
		keep     = flag.Bool("keep", false, "keep the capture directory (implied by -dir)")
	)
	flag.Parse()

	out := *dir
	if out == "" {
		var err error
		out, err = os.MkdirTemp("", "horse-capture-*")
		if err != nil {
			log.Fatal(err)
		}
		if !*keep {
			defer os.RemoveAll(out)
		}
	}

	g, err := horse.WAN(*topoName, horse.BGP())
	if err != nil {
		log.Fatal(err)
	}
	exp := horse.NewExperiment(horse.Config{Pacing: *pacing})
	exp.SetTopology(g)
	exp.CaptureTo(out)
	exp.UseBGP(horse.BGPOptions{RouteReflection: true, LinkLatency: true})
	if err := exp.SendPermutation(7, 500*horse.Mbps, 0, 0); err != nil {
		log.Fatal(err)
	}
	res, err := exp.Run(horse.Time(dur.Nanoseconds()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %s for %v virtual: %d route installs over %d control bytes\n",
		*topoName, res.Sim.VirtualEnd, res.RouteInstalls, res.ControlBytes)
	fmt.Printf("wrote %d pcapng traces to %s\n\n", len(res.CaptureFiles), out)

	// Read the traces back: every block walked, every TCP stream
	// reassembled, every BGP message re-decoded — no Wireshark needed.
	var traces []*capture.Trace
	for _, path := range res.CaptureFiles {
		tr, err := capture.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		traces = append(traces, tr)
	}
	sum, err := capture.Summarize(traces...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sum)

	// The per-session first-UPDATE times trace the convergence wave:
	// sessions nearer the origin of a route hear about it earlier, and
	// every hop adds the link's propagation delay.
	fmt.Printf("\nfirst/last UPDATE delivery per session (the convergence wave):\n")
	for _, tr := range traces {
		msgs, err := capture.Decode(tr)
		if err != nil {
			log.Fatal(err)
		}
		var first, last horse.Time
		n := 0
		for _, m := range msgs {
			if m.Type != "UPDATE" {
				continue
			}
			if n == 0 || m.Time < first {
				first = m.Time
			}
			if m.Time > last {
				last = m.Time
			}
			n++
		}
		if n > 0 {
			fmt.Printf("  %-40s %4d UPDATEs in [%v, %v]\n", tr.Path, n, first, last)
		}
	}
	if *keep || *dir != "" {
		fmt.Printf("\ntraces kept in %s — open one in Wireshark (tcp.port == 179)\n", out)
	}
}
