// Workload shootout: TE policies under time-varying capacity and
// non-permutation traffic.
//
// Runs the demo's three traffic-engineering approaches on the same
// fat-tree, workload and capacity schedule — by default a seeded
// Pareto heavy-tail workload under a random-walk capacity churn — and
// prints for each the steady aggregate rx plus the second-half goodput
// tracking and min-host-rx floor a churning fabric carves out. Because
// every run goes through internal/spec, each row is the identical
// experiment to the matching cmd/tedemo or campaign invocation.
//
//	go run ./examples/workloads
//	go run ./examples/workloads -traffic incast:42:8 -capacity walk:7:250ms
//	go run ./examples/workloads -traffic matrix:demands.csv -capacity trace:sched.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	horse "repro"
	"repro/internal/spec"
)

func main() {
	var (
		k        = flag.Int("k", 4, "fat-tree arity")
		dur      = flag.Duration("dur", 10*time.Second, "virtual experiment duration")
		pacing   = flag.Float64("pacing", 10, "FTI pacing (virtual:wall)")
		seed     = flag.Int64("seed", 42, "seed for seedable -traffic/-capacity templates")
		traffic  = flag.String("traffic", "pareto", "workload spec (pareto, incast:SEED:FANIN, matrix:FILE, alltoall, ...)")
		capacity = flag.String("capacity", "walk", "capacity churn spec (walk[:SEED[:PERIOD]], trace:FILE, none)")
	)
	flag.Parse()

	// Instantiate seedable templates ("pareto", "walk") with -seed so the
	// default invocation is fully pinned, mirroring campaign expansion.
	ts, err := spec.ParseTraffic(*traffic)
	if err != nil {
		log.Fatal(err)
	}
	if ts.Seeded() && !ts.ExplicitSeed {
		ts = ts.WithSeed(*seed)
	}
	cs, err := spec.ParseCapacity(*capacity)
	if err != nil {
		log.Fatal(err)
	}
	if cs.Seeded() && !cs.ExplicitSeed {
		cs = cs.WithSeed(*seed)
	}
	capStr := ""
	if cs.Kind != "" {
		capStr = cs.String()
	}

	hosts := *k * *k * *k / 4
	fmt.Printf("fat-tree k=%d (%d hosts), traffic %s, capacity %s, %v virtual\n\n",
		*k, hosts, ts, orNone(capStr), *dur)
	fmt.Printf("%-10s %-12s %-14s %-14s %-14s %-12s\n",
		"TE", "exec(wall)", "steady-rx", "goodput-mean", "goodput-min", "host-floor")

	for _, scenario := range []string{"bgp-ecmp", "hedera", "ecmp5"} {
		run := spec.Run{
			Topo:           fmt.Sprintf("fattree:%d", *k),
			Scenario:       scenario,
			Traffic:        ts.String(),
			Capacity:       capStr,
			Dur:            spec.Duration(*dur),
			Pacing:         *pacing,
			SampleInterval: spec.Duration(10 * time.Millisecond),
		}
		exp, err := run.Experiment()
		if err != nil {
			log.Fatal(err)
		}
		end := run.Until()
		res, err := exp.Run(end)
		if err != nil {
			log.Fatal(err)
		}
		// Second-half window: past convergence, inside the churn.
		half := end / 2
		floor := "n/a"
		if min, ok := res.MinHostRx.MinBetween(half, end); ok {
			floor = horse.Rate(min.Value).String()
		}
		gmin := "n/a"
		if min, ok := res.AggregateRx.MinBetween(half, end); ok {
			gmin = horse.Rate(min.Value).String()
		}
		fmt.Printf("%-10s %-12v %-14v %-14v %-14s %-12s\n",
			scenario,
			res.Sim.WallTotal.Round(time.Millisecond),
			res.SteadyAggregateRx(),
			horse.Rate(res.AggregateRx.MeanBetween(half, end)),
			gmin,
			floor)
	}
}

// orNone renders an empty capacity spec as "none".
func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
