// BGP WAN example: Horse is "not restricted to DCs and can also be used
// for other types of networks, e.g., Wide Area Networks" (paper §3).
//
// A ring of 8 BGP routers with chord links, each originating one /24.
// The emulated speakers establish eBGP sessions, exchange real UPDATE
// messages and converge; the hybrid clock runs FTI during convergence
// and fast-forwards afterwards while host traffic flows. This is the
// paper's Figure 1 behaviour on a larger topology.
//
//	go run ./examples/bgpwan
package main

import (
	"fmt"
	"log"
	"time"

	horse "repro"
)

func main() {
	topo, err := horse.WANRing(8, 3, horse.BGP(), horse.LinkRate(10*horse.Gbps))
	if err != nil {
		log.Fatal(err)
	}

	exp := horse.NewExperiment(horse.Config{})
	exp.SetTopology(topo)
	exp.UseBGP(horse.BGPOptions{ECMP: true})

	// Cross-ring flows that only start forwarding once BGP converges.
	for _, pair := range [][2]string{{"h0", "h4"}, {"h2", "h6"}, {"h5", "h1"}} {
		if err := exp.AddFlow(pair[0], pair[1], 2*horse.Gbps, 0, 0); err != nil {
			log.Fatal(err)
		}
	}

	res, err := exp.Run(30 * horse.Second)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("routers          : %d in a chorded ring\n", res.Topology.Routers)
	fmt.Printf("route installs   : %d\n", res.RouteInstalls)
	fmt.Printf("control traffic  : %d bytes of real BGP messages\n", res.ControlBytes)
	fmt.Printf("steady rx        : %v (3 flows x 2 Gbps offered)\n", res.SteadyAggregateRx())
	fmt.Printf("wall time        : %v for %v virtual (DES saved the rest)\n",
		res.Sim.WallTotal.Round(time.Millisecond), res.Sim.VirtualEnd)
	for _, f := range res.Flows {
		fmt.Printf("  flow %-38v %8d bytes  state=%s\n", f.Tuple, f.Bytes, f.State)
	}
}
