// BGP WAN example: Horse is "not restricted to DCs and can also be used
// for other types of networks, e.g., Wide Area Networks" (paper §3).
//
// This example runs the full WAN scenario stack (docs/WAN.md): a
// measured backbone topology (Abilene-like by default) whose links
// carry geographic propagation delay, a single AS running iBGP with a
// route reflector hierarchy, and control plane messages delivered at
// fiber speed — so convergence ripples across the continent in RTTs
// instead of instantaneously. After convergence, a seeded link flap
// storm exercises route flap dampening: flapping routes accrue penalty,
// are suppressed, and return once the penalty decays.
//
//	go run ./examples/bgpwan
//	go run ./examples/bgpwan -topo tier1 -dur 30s -delay-scale 2
//	go run ./examples/bgpwan -flaps 0            # convergence only
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	horse "repro"
)

func main() {
	var (
		topoName   = flag.String("topo", "abilene", "embedded WAN topology: abilene, tier1")
		dur        = flag.Duration("dur", 20*time.Second, "virtual duration")
		pacing     = flag.Float64("pacing", 10, "FTI pacing (1 = paper-faithful real time)")
		delayScale = flag.Float64("delay-scale", 1, "scale geographic link delays (0 = zero latency)")
		flaps      = flag.Int("flaps", 2, "cables to flap in the dampening phase (0 disables)")
	)
	flag.Parse()

	g, err := horse.WAN(*topoName, horse.BGP(), horse.DelayScale(*delayScale))
	if err != nil {
		log.Fatal(err)
	}
	reflectors := 0
	for _, r := range g.Routers() {
		if r.RouteReflector {
			reflectors++
		}
	}

	exp := horse.NewExperiment(horse.Config{
		Pacing:         *pacing,
		SampleInterval: 10 * horse.Millisecond,
	})
	exp.SetTopology(g)
	opts := horse.BGPOptions{
		RouteReflection: true,
		LinkLatency:     true,
	}
	virt := horse.Time(dur.Nanoseconds())
	if *flaps > 0 {
		// Dampening runs on the experiment's virtual clock. Demo-grade
		// aggressive thresholds (suppress on the first flap, reuse after
		// one half-life-ish of quiet) sized to the storm's cadence below,
		// so one run shows the whole suppress -> park -> reuse lifecycle.
		opts.Dampening = &horse.Dampening{
			Penalty:  1000,
			Suppress: 800,
			Reuse:    600,
			HalfLife: (virt / 8).Duration(),
		}
	}
	exp.UseBGP(opts)

	// Every PoP's host sends to a distinct remote PoP; nothing flows
	// until the reflector hierarchy has distributed reachability.
	if err := exp.SendPermutation(7, 500*horse.Mbps, 0, 0); err != nil {
		log.Fatal(err)
	}

	// Phase 2: a seeded storm over backbone cables. Each flap resets
	// the BGP sessions on the cable; the withdraw/re-announce churn at
	// the neighbors accrues dampening penalty.
	if *flaps > 0 {
		n, err := exp.FlapRandomLinks(99, *flaps,
			virt/3, virt*2/3, virt/8, virt/16)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("flap storm        : %d scheduled down/up events on %d cables\n", n, *flaps)
	}

	res, err := exp.Run(virt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("topology          : %s — %d PoPs, %d route reflectors\n",
		*topoName, res.Topology.Routers, reflectors)
	fmt.Printf("route installs    : %d (+%d withdraws) over %d bytes of real BGP\n",
		res.RouteInstalls, res.RouteWithdraws, res.ControlBytes)
	if conv, ok := res.ConvergedAt(0.95); ok {
		fmt.Printf("convergence       : aggregate rx at 95%% of steady by t=%v\n", conv)
	}
	fmt.Printf("path latency      : %v rate-weighted mean one-way (delay-scale %v)\n",
		res.MeanPathLatency, *delayScale)
	fmt.Printf("steady rx         : %v\n", res.SteadyAggregateRx())
	fmt.Printf("wall time         : %v for %v virtual (pacing %v, DES saved the rest)\n",
		res.Sim.WallTotal.Round(time.Millisecond), res.Sim.VirtualEnd, *pacing)
	if *flaps > 0 {
		fmt.Printf("injections        : %d applied\n", res.Injections)
		var suppressed, reused, loops uint64
		for _, r := range g.Routers() {
			if sp := exp.Manager().Speaker(r.ID); sp != nil {
				suppressed += sp.Stats.RoutesSuppressed.Load()
				reused += sp.Stats.RoutesReused.Load()
				loops += sp.Stats.ReflectionLoops.Load()
			}
		}
		fmt.Printf("flap dampening    : %d announcements suppressed, %d reused after decay\n",
			suppressed, reused)
		fmt.Printf("reflection loops  : %d stopped by ORIGINATOR_ID/CLUSTER_LIST\n", loops)
	}
	for _, f := range res.Flows {
		fmt.Printf("  flow %-38v %9d bytes  lat=%-12v state=%s\n",
			f.Tuple, f.Bytes, f.PathLatency, f.State)
	}
}
