// Hedera datacenter example: dynamic flow scheduling on a fat-tree.
//
// Runs the same permutation workload twice on a k=4 fat-tree — once under
// plain reactive ECMP (Hedera's baseline) and once under the full Hedera
// scheduler (demand estimation + Global First Fit every 5 virtual
// seconds) — and compares the aggregate goodput. Hedera's win comes from
// moving hash-collided elephants onto disjoint core paths, which is the
// paper's TE story.
//
//	go run ./examples/hederadc
package main

import (
	"fmt"
	"log"
	"time"

	horse "repro"
)

func run(name string, app horse.App, seed int64) {
	topo, err := horse.FatTree(4, horse.SDN())
	if err != nil {
		log.Fatal(err)
	}
	exp := horse.NewExperiment(horse.Config{
		// Accelerated FTI so the example finishes in seconds; set
		// Pacing: 1 for paper-faithful real-time control plane.
		Pacing: 10,
	})
	exp.SetTopology(topo)
	exp.UseSDN(app)
	if err := exp.SendPermutation(seed, 1*horse.Gbps, 0, 0); err != nil {
		log.Fatal(err)
	}
	res, err := exp.Run(30 * horse.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s steady-rx=%-10v wall=%-8v packet-ins=%-4d stats-polls=%d\n",
		name, res.SteadyAggregateRx(), res.Sim.WallTotal.Round(time.Millisecond),
		res.PacketIns, res.StatsQueries)
}

func main() {
	fmt.Println("k=4 fat-tree, 16 hosts, permutation workload, 16 Gbps offered")
	// Use the same seed so both schemes face identical traffic.
	run("ecmp (baseline)", horse.AppReactive(false), 11)
	run("hedera", horse.AppHedera(5*horse.Second), 11)
}
