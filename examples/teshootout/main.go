// TE shootout: the paper's demonstration in one program.
//
// Runs all three traffic-engineering approaches of the demo on the same
// fat-tree and workload, printing for each the topology creation time,
// execution time, and the aggregate rate of flows arriving at the hosts —
// exactly the numbers the live demo displays.
//
//	go run ./examples/teshootout [k]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	horse "repro"
)

func main() {
	k := 4
	if len(os.Args) > 1 {
		var err error
		if k, err = strconv.Atoi(os.Args[1]); err != nil {
			log.Fatalf("bad fat-tree arity %q", os.Args[1])
		}
	}
	const seed = 42
	hosts := k * k * k / 4
	fmt.Printf("fat-tree k=%d: %d hosts, permutation UDP @ 1 Gbps each (offered %d Gbps)\n\n", k, hosts, hosts)
	fmt.Printf("%-12s %-12s %-12s %-14s %-12s\n", "TE", "setup", "exec(wall)", "steady-rx", "of offered")

	type te struct {
		name  string
		build func(exp *horse.Experiment) error
	}
	tes := []te{
		{"bgp-ecmp", func(exp *horse.Experiment) error {
			g, err := horse.FatTree(k, horse.BGP())
			if err != nil {
				return err
			}
			exp.SetTopology(g)
			exp.UseBGP(horse.BGPOptions{ECMP: true})
			return nil
		}},
		{"hedera", func(exp *horse.Experiment) error {
			g, err := horse.FatTree(k, horse.SDN())
			if err != nil {
				return err
			}
			exp.SetTopology(g)
			exp.UseSDN(horse.AppHedera(5 * horse.Second))
			return nil
		}},
		{"ecmp5", func(exp *horse.Experiment) error {
			g, err := horse.FatTree(k, horse.SDN())
			if err != nil {
				return err
			}
			exp.SetTopology(g)
			exp.UseSDN(horse.AppECMP5())
			return nil
		}},
	}

	for _, t := range tes {
		exp := horse.NewExperiment(horse.Config{Pacing: 10})
		if err := t.build(exp); err != nil {
			log.Fatal(err)
		}
		if err := exp.SendPermutation(seed, 1*horse.Gbps, 0, 0); err != nil {
			log.Fatal(err)
		}
		res, err := exp.Run(30 * horse.Second)
		if err != nil {
			log.Fatal(err)
		}
		rx := res.SteadyAggregateRx()
		fmt.Printf("%-12s %-12v %-12v %-14v %5.1f%%\n",
			t.name,
			res.SetupWall.Round(time.Millisecond),
			res.Sim.WallTotal.Round(time.Millisecond),
			rx,
			100*float64(rx)/float64(horse.Gbps)/float64(hosts))
	}
}
