// Failure injection walkthrough: the control plane's actual job is
// reacting to events — link failures, capacity changes, session resets.
// This example runs the same convergence experiment against both control
// planes Horse emulates and compares their repair behaviour:
//
//  1. a BGP fat-tree (RFC 7938-style, one ASN per switch): the failure
//     resets the eBGP session over the dead link, withdrawals flood, and
//     the routers converge onto the surviving paths;
//  2. an SDN fat-tree running the proactive ECMP app: the adjacent
//     switches report PORT_STATUS and the controller reinstalls
//     select-group rules over the surviving shortest paths.
//
// In both cases the aggregate receive rate collapses at the instant of
// failure, recovers to the degraded topology's max-min rate after the
// control plane repair, and returns to the pre-failure allocation when
// the link comes back (exp.At(...).LinkUp restores it).
//
//	go run ./examples/failures
package main

import (
	"fmt"
	"log"
	"time"

	horse "repro"
	"repro/internal/stats"
)

const (
	failAt = 4 * horse.Second
	healAt = 8 * horse.Second
	endAt  = 12 * horse.Second
)

func run(name string, setup func(*horse.Experiment) error) {
	exp := horse.NewExperiment(horse.Config{
		// Accelerate FTI so the walkthrough finishes quickly; shapes are
		// preserved (see Config.Pacing). Sample at 10ms: control plane
		// repair takes milliseconds, not the default 100ms sample.
		Pacing:         20,
		SampleInterval: 10 * horse.Millisecond,
	})
	if err := setup(exp); err != nil {
		log.Fatal(err)
	}
	if err := exp.SendPermutation(42, 1*horse.Gbps, 0, 0); err != nil {
		log.Fatal(err)
	}

	// The scenario script: one agg-core link dies mid-run and is
	// repaired later. Injections are control plane events — the hybrid
	// clock holds in FTI while the emulated plane reacts in wall time.
	if err := exp.At(failAt).LinkDown("agg-0-0", "core-0-0"); err != nil {
		log.Fatal(err)
	}
	if err := exp.At(healAt).LinkUp("agg-0-0", "core-0-0"); err != nil {
		log.Fatal(err)
	}

	res, err := exp.Run(endAt)
	if err != nil {
		log.Fatal(err)
	}

	rx := res.AggregateRx
	pre := rx.MeanBetween(failAt-horse.Second, failAt)
	post := rx.MeanBetween(endAt-horse.Second, endAt)
	rep, repOK := rx.RepairAfter(failAt, healAt, stats.DefaultRepairFrac)

	fmt.Printf("== %s ==\n", name)
	fmt.Printf("  wall time        : %v for %v virtual\n",
		res.Sim.WallTotal.Round(time.Millisecond), res.Sim.VirtualEnd)
	if pre <= 0 || !repOK {
		fmt.Printf("  control plane had not converged before the failure; nothing to measure\n\n")
		return
	}
	fmt.Printf("  pre-failure      : %v aggregate rx\n", horse.Rate(pre))
	fmt.Printf("  dip              : %v at %v (-%.1f%%)\n",
		horse.Rate(rep.Dip.Value), rep.Dip.At, 100*(pre-rep.Dip.Value)/pre)
	if rep.Recovered {
		fmt.Printf("  repair latency   : %v (control plane reroutes to %v)\n",
			rep.Latency, horse.Rate(rep.Rec.Value))
	}
	fmt.Printf("  degraded steady  : %v (%.1f%% of pre)\n", horse.Rate(rep.Degraded), 100*rep.Degraded/pre)
	fmt.Printf("  after link-up    : %v (%.1f%% of pre)\n", horse.Rate(post), 100*post/pre)
	fmt.Printf("  control activity : %d withdraws, %d flowmods, %d injections\n\n",
		res.RouteWithdraws, res.FlowModsApplied, res.Injections)
}

func main() {
	run("BGP fat-tree k=4 (session reset + withdrawal flood)", func(exp *horse.Experiment) error {
		g, err := horse.FatTree(4, horse.BGP())
		if err != nil {
			return err
		}
		exp.SetTopology(g)
		exp.UseBGP(horse.BGPOptions{ECMP: true})
		return nil
	})
	run("SDN fat-tree k=4, proactive ECMP (PORT_STATUS repair)", func(exp *horse.Experiment) error {
		g, err := horse.FatTree(4, horse.SDN())
		if err != nil {
			return err
		}
		exp.SetTopology(g)
		exp.UseSDN(horse.AppECMP5())
		return nil
	})
}
