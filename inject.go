package horse

import (
	"fmt"
	"math/rand"

	"repro/internal/cm"
	"repro/internal/topo"
)

// This file is the public face of the failure & dynamics injection
// subsystem: scripted events that happen *during* a run, so the emulated
// control plane has something to react to — link failures and repairs,
// capacity changes, node crashes, and random link flapping. Injections
// are declared before Run (against the already-set topology, so name
// errors surface at scripting time) and executed as simulation events;
// each one is a control plane event, dropping the hybrid clock into FTI
// so BGP speakers and OpenFlow controllers repair paths in wall time.
//
//	exp.At(5*horse.Second).LinkDown("agg-0-0", "core-0-0")
//	exp.At(10*horse.Second).LinkUp("agg-0-0", "core-0-0")
//	exp.At(3*horse.Second).SetLinkRate("s0", "s1", 100*horse.Mbps)
//	exp.At(7*horse.Second).NodeDown("core-0-1")
//	exp.FlapRandomLinks(42, 3, 2*horse.Second, 18*horse.Second,
//	    4*horse.Second, 500*horse.Millisecond)

// injection is one scheduled event: apply runs on the engine goroutine.
type injection struct {
	at    Time
	apply func(m *cm.Manager)
}

// InjectionPoint schedules events at one virtual time; obtained from
// Experiment.At.
type InjectionPoint struct {
	e  *Experiment
	at Time
}

// At returns an injection point for virtual time t. The topology must be
// set first so injected names resolve. Calling At after Run started has
// no effect (events are scheduled once, at Run).
func (e *Experiment) At(t Time) *InjectionPoint {
	return &InjectionPoint{e: e, at: t}
}

// cable resolves the cable between two named nodes.
func (p *InjectionPoint) cable(a, b string) (*topo.Link, error) {
	if p.e.g == nil {
		return nil, fmt.Errorf("horse: set a topology before scheduling injections")
	}
	na, ok := p.e.g.NodeByName(a)
	if !ok {
		return nil, fmt.Errorf("horse: unknown node %q", a)
	}
	nb, ok := p.e.g.NodeByName(b)
	if !ok {
		return nil, fmt.Errorf("horse: unknown node %q", b)
	}
	ab := p.e.g.CableBetween(na.ID, nb.ID)
	if ab == nil {
		return nil, fmt.Errorf("horse: no link between %q and %q", a, b)
	}
	return ab, nil
}

func (p *InjectionPoint) node(name string) (*topo.Node, error) {
	if p.e.g == nil {
		return nil, fmt.Errorf("horse: set a topology before scheduling injections")
	}
	n, ok := p.e.g.NodeByName(name)
	if !ok {
		return nil, fmt.Errorf("horse: unknown node %q", name)
	}
	return n, nil
}

// LinkDown fails the link between nodes a and b (both directions) at
// this injection point's time. The fluid layer clamps the link to zero
// capacity on the spot; adjacent forwarding state is invalidated; BGP
// sessions across the link reset and flood withdrawals; OpenFlow
// agents report PORT_STATUS so the controller app repairs paths.
func (p *InjectionPoint) LinkDown(a, b string) error {
	ab, err := p.cable(a, b)
	if err != nil {
		return err
	}
	p.e.addInjection(p.at, func(m *cm.Manager) { m.CableDown(ab) })
	return nil
}

// LinkUp repairs a previously failed link: capacity returns, BGP
// re-peers over a fresh session, and the controller learns the port is
// back — restoring the pre-failure forwarding (and allocation, once the
// control plane re-converges).
func (p *InjectionPoint) LinkUp(a, b string) error {
	ab, err := p.cable(a, b)
	if err != nil {
		return err
	}
	p.e.addInjection(p.at, func(m *cm.Manager) { m.CableUp(ab) })
	return nil
}

// SetLinkRate changes the capacity of the link between a and b (both
// directions) — the "explicit reaction to capacity change" scenario.
// Allocations re-solve incrementally over the dirty region around the
// link; no routing state changes.
func (p *InjectionPoint) SetLinkRate(a, b string, r Rate) error {
	if r < 0 {
		return fmt.Errorf("horse: negative link rate %v", r)
	}
	ab, err := p.cable(a, b)
	if err != nil {
		return err
	}
	p.e.addInjection(p.at, func(m *cm.Manager) { m.CableRate(ab, r) })
	return nil
}

// NodeDown crashes a node: every attached link fails (neighbors react as
// for LinkDown) and the node stops forwarding.
func (p *InjectionPoint) NodeDown(name string) error {
	n, err := p.node(name)
	if err != nil {
		return err
	}
	id := n.ID
	p.e.addInjection(p.at, func(m *cm.Manager) { m.NodeDown(id) })
	return nil
}

// NodeUp restores a crashed node and its links; the control plane
// re-converges around it.
func (p *InjectionPoint) NodeUp(name string) error {
	n, err := p.node(name)
	if err != nil {
		return err
	}
	id := n.ID
	p.e.addInjection(p.at, func(m *cm.Manager) { m.NodeUp(id) })
	return nil
}

// FlapRandomLinks schedules seeded random link flapping: count distinct
// cables between forwarding nodes (host access links are spared, so no
// host is silently cut from its only port) each go down and come back up
// repeatedly within (start, until). Up-times are exponential with mean
// meanUp, outages exponential with mean meanDown; every scheduled outage
// is paired with its repair inside the window, so the topology ends the
// window fully healed. The same seed reproduces the same flap schedule.
// It returns the number of scheduled injections.
func (e *Experiment) FlapRandomLinks(seed int64, count int, start, until, meanUp, meanDown Time) (int, error) {
	if e.g == nil {
		return 0, fmt.Errorf("horse: set a topology before scheduling injections")
	}
	if count <= 0 || meanUp <= 0 || meanDown <= 0 || until <= start {
		return 0, fmt.Errorf("horse: invalid flap parameters")
	}
	cables := e.backboneCables()
	if count > len(cables) {
		return 0, fmt.Errorf("horse: %d flap links requested, topology has %d eligible cables", count, len(cables))
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(cables), func(i, j int) { cables[i], cables[j] = cables[j], cables[i] })
	expo := func(mean Time) Time {
		d := Time(rng.ExpFloat64() * float64(mean))
		if d <= 0 {
			d = 1
		}
		return d
	}
	scheduled := 0
	for _, ab := range cables[:count] {
		ab := ab
		t := start + expo(meanUp)
		for {
			downAt := t
			upAt := downAt + expo(meanDown)
			if upAt >= until {
				break // an outage that cannot heal inside the window is dropped
			}
			e.addInjection(downAt, func(m *cm.Manager) { m.CableDown(ab) })
			e.addInjection(upAt, func(m *cm.Manager) { m.CableUp(ab) })
			scheduled += 2
			t = upAt + expo(meanUp)
			if t >= until {
				break
			}
		}
	}
	return scheduled, nil
}

// backboneCables lists the forwarding-node to forwarding-node cables
// (one entry per cable; host access links are spared so no host is
// silently cut from its only port) — the candidate set both
// FlapRandomLinks and WalkLinkRates draw from, in deterministic
// topology order.
func (e *Experiment) backboneCables() []*topo.Link {
	var cables []*topo.Link
	for _, l := range e.g.Links {
		if l.ID > l.Reverse {
			continue // one entry per cable
		}
		if e.g.Nodes[l.From].Kind == topo.Host || e.g.Nodes[l.To].Kind == topo.Host {
			continue
		}
		cables = append(cables, l)
	}
	return cables
}

// Walk step bounds: each step multiplies a cable's capacity factor by a
// draw from [walkStepMin, walkStepMax), clamped to
// [walkFloor, 1.0]·configured rate — capacity dips and recovers but
// never exceeds the provisioned link and never quite reaches zero (a
// zero-capacity walk would be a failure, which is FlapRandomLinks'
// job).
const (
	walkStepMin = 0.75
	walkStepMax = 1.25
	walkFloor   = 0.1
)

// WalkLinkRates schedules a seeded multiplicative random walk over the
// capacity of every backbone cable: every period from start until
// until, each cable's capacity factor takes one step and a SetLinkRate
// injection applies factor·(configured rate) — the time-varying link
// capacity workload (ABC-style cellular traces, but synthesized). The
// same seed reproduces the same schedule; factors are relative to the
// capacity configured at scripting time, so the walk composes with
// heterogeneous link rates. It returns the number of scheduled
// capacity changes.
func (e *Experiment) WalkLinkRates(seed int64, start, period, until Time) (int, error) {
	if e.g == nil {
		return 0, fmt.Errorf("horse: set a topology before scheduling injections")
	}
	if period <= 0 || until <= start {
		return 0, fmt.Errorf("horse: invalid walk parameters (period %v, window %v..%v)", period, start, until)
	}
	cables := e.backboneCables()
	if len(cables) == 0 {
		return 0, fmt.Errorf("horse: topology has no backbone cables to walk")
	}
	rng := rand.New(rand.NewSource(seed))
	factors := make([]float64, len(cables))
	for i := range factors {
		factors[i] = 1
	}
	scheduled := 0
	for t := start; t < until; t += period {
		for i, ab := range cables {
			f := factors[i] * (walkStepMin + rng.Float64()*(walkStepMax-walkStepMin))
			if f > 1 {
				f = 1
			}
			if f < walkFloor {
				f = walkFloor
			}
			factors[i] = f
			ab := ab
			rate := Rate(f * float64(ab.Rate()))
			e.addInjection(t, func(m *cm.Manager) { m.CableRate(ab, rate) })
			scheduled++
		}
	}
	return scheduled, nil
}

// addInjection records one scheduled event.
func (e *Experiment) addInjection(at Time, apply func(m *cm.Manager)) {
	if at < 0 {
		at = 0
	}
	e.injections = append(e.injections, injection{at: at, apply: apply})
}
