package horse

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/bgp"
	"repro/internal/capture"
	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/fluid"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// scenarioKind selects the control plane flavour.
type scenarioKind int

const (
	scenarioNone scenarioKind = iota
	scenarioBGP
	scenarioSDN
)

// BGPOptions configures the BGP control plane.
type BGPOptions struct {
	// ECMP enables multipath best-path selection (the demo's
	// "BGP plus ECMP path selection by hashing of IP source and
	// destination").
	ECMP bool
	// HoldTime for all sessions (default 90s wall time).
	HoldTime time.Duration
	// AdvertiseDelay is the MRAI-style batching window: route changes
	// accumulate for this long before flushAdv packs them into
	// attribute-grouped UPDATE messages (default 2ms wall time). Longer
	// windows trade convergence latency for fewer, fuller UPDATEs —
	// the axis the MRAI campaign sweeps.
	AdvertiseDelay time.Duration
	// RouteReflection runs same-AS adjacencies as iBGP with RFC 4456
	// route reflection; reflector roles come from the topology
	// (topo.Node.RouteReflector, set by the WAN generators). Required
	// for single-AS WAN topologies, a no-op on all-eBGP ones.
	RouteReflection bool
	// LinkLatency delays control plane message delivery by each link's
	// propagation delay in virtual time, so BGP convergence interacts
	// with geography (see docs/WAN.md). Zero-delay links behave exactly
	// as without the flag.
	LinkLatency bool
	// Dampening, when non-nil, enables route flap dampening with the
	// given parameters (zero fields take RFC 2439-flavoured defaults;
	// see Dampening). Decay and reuse run on the experiment's virtual
	// clock — a 15s HalfLife spans 15s of the experiment timeline
	// regardless of Pacing or DES fast-forward — so size it against
	// the scenario's flap cadence, not the wall clock.
	Dampening *Dampening
}

// Dampening re-exports the BGP route flap dampening parameters.
type Dampening = bgp.Dampening

// Experiment is a single Horse run: a topology, a control plane scenario
// and a workload.
type Experiment struct {
	cfg        Config
	g          *Topology
	kind       scenarioKind
	bgpOpts    BGPOptions
	app        App
	flows      []traffic.Spec
	injections []injection           // scheduled failure/dynamics events
	extraRun   []func(e *Experiment) // test/ablation hooks

	// populated during Run
	engine *sim.Engine
	net    *netmodel.Network
	mgr    *cm.Manager
}

// NewExperiment creates an experiment with the given clock configuration.
func NewExperiment(cfg Config) *Experiment {
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = 100 * Millisecond
	}
	return &Experiment{cfg: cfg}
}

// SetTopology assigns the experiment topology. Flows and injections are
// scoped to a topology (flows hold host indices, injections hold
// resolved links and nodes), so replacing it discards any already
// scripted — script the workload and the failure scenario after the
// final SetTopology.
func (e *Experiment) SetTopology(g *Topology) {
	if e.g != nil && e.g != g {
		e.flows = nil
		e.injections = nil
	}
	e.g = g
}

// SetLogf installs a debug logger after construction — equivalent to
// setting Config.Logf. Callers that build experiments through
// internal/spec (whose Run is JSON-serializable and so carries no
// function values) use this to attach logging before Run.
func (e *Experiment) SetLogf(logf func(format string, args ...any)) {
	e.cfg.Logf = logf
}

// CaptureTo records the run's control plane as pcapng traces in dir:
// one file per speaker pair (BGP session or switch-controller
// connection), every message framed as a synthesized TCP conversation
// and stamped with its *delivery* virtual time — on WAN links that is
// write time plus propagation delay, so UPDATE arrival times in the
// trace are the convergence timeline. The directory is created on Run;
// Result.CaptureFiles lists what was written. Equivalent to setting
// Config.CaptureDir.
func (e *Experiment) CaptureTo(dir string) {
	e.cfg.CaptureDir = dir
}

// UseBGP selects an emulated BGP control plane (requires a topology whose
// forwarding nodes are routers).
func (e *Experiment) UseBGP(opts BGPOptions) {
	e.kind = scenarioBGP
	e.bgpOpts = opts
}

// UseSDN selects an emulated OpenFlow control plane running the given app
// (requires a topology whose forwarding nodes are switches).
func (e *Experiment) UseSDN(app App) {
	e.kind = scenarioSDN
	e.app = app
}

// AddFlow schedules one flow between two named hosts.
func (e *Experiment) AddFlow(src, dst string, rate Rate, start, duration Time) error {
	if e.g == nil {
		return fmt.Errorf("horse: set a topology before adding flows")
	}
	hosts := e.g.Hosts()
	idx := func(name string) int {
		for i, h := range hosts {
			if h.Name == name {
				return i
			}
		}
		return -1
	}
	si, di := idx(src), idx(dst)
	if si < 0 || di < 0 {
		return fmt.Errorf("horse: unknown host %q or %q", src, dst)
	}
	e.flows = append(e.flows, traffic.Spec{
		SrcHost: si, DstHost: di, Rate: rate, Start: start, Duration: duration,
		Proto:   core.ProtoUDP,
		SrcPort: uint16(10000 + len(e.flows)),
		DstPort: uint16(20000 + len(e.flows)),
	})
	return nil
}

// AddTraffic applies a workload pattern over the topology's hosts.
func (e *Experiment) AddTraffic(p traffic.Pattern) error {
	if e.g == nil {
		return fmt.Errorf("horse: set a topology before adding traffic")
	}
	e.flows = append(e.flows, p(len(e.g.Hosts()))...)
	return nil
}

// SendPermutation applies the paper's demo workload: every host sends one
// UDP flow at the given rate to a distinct random destination.
func (e *Experiment) SendPermutation(seed int64, rate Rate, start, duration Time) error {
	return e.AddTraffic(traffic.Permutation(seed, rate, start, duration))
}

// Run executes the experiment until the given virtual time and returns
// the results. Run may only be called once per Experiment.
func (e *Experiment) Run(until Time) (*Result, error) {
	if e.g == nil {
		return nil, fmt.Errorf("horse: no topology")
	}
	if e.kind == scenarioNone {
		return nil, fmt.Errorf("horse: no control plane scenario (UseBGP or UseSDN)")
	}
	if err := e.g.Validate(); err != nil {
		return nil, fmt.Errorf("horse: invalid topology: %w", err)
	}

	setupStart := time.Now()
	e.engine = sim.New(sim.Config{
		FTIStep:      e.cfg.FTIStep,
		QuietTimeout: e.cfg.QuietTimeout,
		Pacing:       e.cfg.Pacing,
		MaxIdleWall:  e.cfg.MaxIdleWall,
		// The emulated control plane boots in wall time at experiment
		// start; begin in FTI so DES cannot outrun it (paper §2).
		StartInFTI: true,
	})
	e.net = netmodel.New(e.g)
	if e.cfg.NaiveSolver {
		e.net.Flows.SetNaive(true)
	}
	workers := e.cfg.SolverWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e.net.Flows.SetWorkers(workers)
	e.mgr = cm.New(e.engine, e.net, e.cfg.Logf)
	defer e.mgr.Stop()

	var pcap *capture.Capture
	if e.cfg.CaptureDir != "" {
		var err error
		pcap, err = capture.New(e.cfg.CaptureDir)
		if err != nil {
			return nil, err
		}
		e.mgr.SetCapture(pcap)
		// The deferred Close covers the wiring error paths (sessions may
		// already hold open files); the success path closes explicitly
		// below to surface write errors, and a second Close is a no-op.
		defer pcap.Close()
	}

	// Wire the control plane. This launches the emulated processes; their
	// first messages are already queued as control activity when the
	// engine starts, exactly like Horse booting Quagga/controller
	// processes at experiment start.
	switch e.kind {
	case scenarioBGP:
		bgpCfg := cm.BGPConfig{
			ECMP:            e.bgpOpts.ECMP,
			HoldTime:        e.bgpOpts.HoldTime,
			AdvertiseDelay:  e.bgpOpts.AdvertiseDelay,
			RouteReflection: e.bgpOpts.RouteReflection,
			LinkLatency:     e.bgpOpts.LinkLatency,
		}
		bgpCfg.Dampening = e.bgpOpts.Dampening
		if err := e.mgr.WireBGP(bgpCfg); err != nil {
			return nil, err
		}
	case scenarioSDN:
		if err := e.mgr.WireSDN(e.app.build()); err != nil {
			return nil, err
		}
	}
	setupWall := time.Since(setupStart)

	// Schedule the workload.
	hosts := e.g.Hosts()
	specs := e.flows
	result := &Result{
		Topology:  e.g.Size(),
		SetupWall: setupWall,
	}
	result.AggregateRx = &stats.Series{Name: "aggregate-rx"}
	result.MinHostRx = &stats.Series{Name: "min-host-rx"}
	// flowSpecs keeps the scheduled specs for final reporting; finals
	// records each stopped flow's last snapshot (the flow set recycles
	// the slot on StopFlow, so the stop event is the only chance to read
	// its delivered bytes).
	var flowSpecs []*fluid.Flow
	finals := make(map[fluid.FlowID]fluid.Flow)

	e.engine.PostData(func() {
		for i, spec := range specs {
			if spec.SrcHost >= len(hosts) || spec.DstHost >= len(hosts) {
				continue
			}
			id := fluid.FlowID(i + 1)
			src := hosts[spec.SrcHost]
			dst := hosts[spec.DstHost]
			f := &fluid.Flow{
				ID: id,
				Tuple: core.FiveTuple{
					Src: src.IP, Dst: dst.IP, Proto: spec.Proto,
					SrcPort: spec.SrcPort, DstPort: spec.DstPort,
				},
				Src: src.ID, Dst: dst.ID, Demand: spec.Rate,
			}
			flowSpecs = append(flowSpecs, f)
			start := spec.Start
			dur := spec.Duration
			e.engine.Schedule(start, func() {
				e.net.StartFlow(f, e.engine.Now())
			})
			if dur > 0 {
				e.engine.Schedule(start+dur, func() {
					if final, ok := e.net.StopFlow(f.ID, e.engine.Now()); ok {
						finals[f.ID] = final
					}
				})
			}
		}
		// Failure & dynamics injections. Each injection marks control
		// activity inside the applying method, so the clock is already
		// in FTI when the emulated plane starts reacting.
		for _, inj := range e.injections {
			apply := inj.apply
			e.engine.Schedule(inj.at, func() { apply(e.mgr) })
		}
		// Aggregate receive rate sampling. RxRateByDst refills the
		// network's reused per-destination map each tick (no per-tick
		// allocation); its minimum is the fairness floor series.
		var sample func()
		sample = func() {
			now := e.engine.Now()
			rx := e.net.RxRateByDst(now) // integrates up to now
			result.AggregateRx.Add(now, float64(e.net.Flows.AggregateRx()))
			if len(rx) > 0 {
				minRx := math.Inf(1)
				for _, r := range rx {
					if float64(r) < minRx {
						minRx = float64(r)
					}
				}
				result.MinHostRx.Add(now, minRx)
			}
			if now < until {
				e.engine.After(e.cfg.SampleInterval, sample)
			}
		}
		e.engine.Schedule(0, sample)
	})

	for _, hook := range e.extraRun {
		hook(e)
	}

	simStats := e.engine.Run(until)

	// Final integration and flow accounting.
	e.net.Flows.Integrate(simStats.VirtualEnd)
	result.PerHostRxBytes = make(map[string]uint64)
	for _, f := range e.net.Flows.Flows() {
		if dst := e.g.Node(f.Dst); dst != nil {
			result.PerHostRxBytes[dst.Name] += f.Bytes
		}
	}
	for _, f := range flowSpecs {
		snap, live := e.net.Flows.Flow(f.ID)
		if !live {
			// Stopped mid-run (final snapshot recorded at the stop
			// event) or never started (zero value: pending, no bytes).
			snap = finals[f.ID]
		}
		fr := FlowResult{
			Tuple: f.Tuple,
			Bytes: snap.Bytes,
			Rate:  snap.Rate,
			State: snap.State.String(),
		}
		if until > 0 {
			fr.AvgRate = Rate(float64(snap.Bytes*8) / until.Seconds())
		}
		if lat, ok := e.net.Flows.PathLatency(f.ID); ok {
			fr.PathLatency = lat
		}
		result.Flows = append(result.Flows, fr)
	}
	result.MeanPathLatency = e.net.Flows.MeanPathLatency()
	result.Sim = simStats
	result.Solves = e.net.Flows.Solves()
	result.Solver = e.net.Flows.Totals()
	result.SolverWorkers = e.net.Flows.Workers()
	result.Injections = e.mgr.Stats.Injections.Load()
	result.ControlBytes = e.mgr.Stats.ControlBytes.Load()
	result.ControlWrites = e.mgr.Stats.ControlWrites.Load()
	result.RouteInstalls = e.mgr.Stats.RouteInstalls.Load()
	result.RouteWithdraws = e.mgr.Stats.RouteWithdraws.Load()
	result.FlowModsApplied = e.mgr.Stats.FlowModsApplied.Load()
	result.PacketIns = e.mgr.Stats.PacketIns.Load()
	result.StatsQueries = e.mgr.Stats.StatsQueries.Load()
	result.Drops = e.net.Drops()
	if pcap != nil {
		result.CaptureFiles = pcap.Files()
		if err := pcap.Close(); err != nil {
			return result, fmt.Errorf("horse: closing capture: %w", err)
		}
	}
	return result, nil
}

// Engine exposes the simulation engine for tests and ablations; it is nil
// before Run.
func (e *Experiment) Engine() *sim.Engine { return e.engine }

// Manager exposes the Connection Manager; nil before Run.
func (e *Experiment) Manager() *cm.Manager { return e.mgr }

// Result is the outcome of one run.
type Result struct {
	Topology  topo.Stats
	Sim       sim.Stats
	SetupWall time.Duration

	// AggregateRx is the demo's headline series: total rate arriving at
	// all hosts over virtual time.
	AggregateRx *stats.Series

	// MinHostRx is the fairness floor: per sampling tick, the lowest
	// receive rate among destinations currently receiving anything.
	// Destinations whose flows are all blackholed or stopped do not
	// contribute (the series is empty while nothing flows).
	MinHostRx *stats.Series

	// PerHostRxBytes maps destination host name to bytes received by
	// flows still live at the end of the run.
	PerHostRxBytes map[string]uint64

	Flows []FlowResult

	// Solves counts rate-solver runs over the whole experiment; reroute
	// storms are batched, so this tracks control plane event granularity
	// rather than per-flow mutations.
	Solves int

	// Solver aggregates per-solve statistics (dirty-region sizes,
	// independent components, parallel fan-outs), accumulated once per
	// solve regardless of Defer/Resume batching.
	Solver fluid.Totals
	// SolverWorkers is the effective worker count the run used.
	SolverWorkers int

	// MeanPathLatency is the rate-weighted mean one-way propagation
	// latency of the active flows' final paths — nonzero only on
	// topologies with link delay (WANs). The latency an average
	// delivered bit experienced at the end of the run.
	MeanPathLatency Time

	ControlBytes    uint64
	ControlWrites   uint64
	RouteInstalls   uint64
	RouteWithdraws  uint64
	FlowModsApplied uint64
	PacketIns       uint64
	StatsQueries    uint64
	Drops           uint64

	// Injections counts applied failure/dynamics events (LinkDown,
	// LinkUp, SetLinkRate, node transitions, flaps).
	Injections uint64

	// CaptureFiles lists the pcapng traces the run wrote (empty unless
	// CaptureTo/Config.CaptureDir was set).
	CaptureFiles []string
}

// FlowResult summarizes one flow.
type FlowResult struct {
	Tuple core.FiveTuple
	Bytes uint64
	// Rate is the flow's final allocated rate — the converged max–min
	// share, zero for stopped or blackholed flows. Unlike Bytes (which
	// integrates through the wall-jittery convergence window) the final
	// rate is a deterministic function of the converged topology and
	// paths; internal/spec fingerprints it bit-for-bit.
	Rate    Rate
	AvgRate Rate
	State   string
	// PathLatency is the one-way propagation latency of the flow's
	// final path (zero for blackholed flows and delay-free topologies).
	PathLatency Time
}

// ConvergedAt reports the virtual time at which the aggregate receive
// rate first reached frac (e.g. 0.95) of its steady value — the
// experiment's convergence time. On WANs with LinkLatency this grows
// with propagation delay, which is the latency-aware convergence metric
// docs/WAN.md describes. ok is false when the run never converged (or
// delivered nothing).
func (r *Result) ConvergedAt(frac float64) (Time, bool) {
	steady := r.SteadyAggregateRx()
	if steady <= 0 {
		return 0, false
	}
	sample, ok := r.AggregateRx.FirstAtLeast(0, frac*float64(steady))
	if !ok {
		return 0, false
	}
	return sample.At, true
}

// SteadyAggregateRx reports the mean aggregate receive rate over the
// second half of the run — a convergence-insensitive summary.
func (r *Result) SteadyAggregateRx() Rate {
	if r.AggregateRx.Len() == 0 {
		return 0
	}
	half := r.Sim.VirtualEnd / 2
	return Rate(r.AggregateRx.MeanAfter(half))
}

// String summarizes the run.
func (r *Result) String() string {
	return fmt.Sprintf("hosts=%d switches=%d routers=%d wall=%v (setup %v) %s steady-rx=%v",
		r.Topology.Hosts, r.Topology.Switches, r.Topology.Routers,
		r.Sim.WallTotal.Round(time.Millisecond), r.SetupWall.Round(time.Millisecond),
		r.Sim.String(), r.SteadyAggregateRx())
}
