package horse

// Parity oracle for the component-sharded parallel max–min solver: the
// same failure-injection history (seeded link flaps via netmodel's
// SetCableState, capacity changes, flow churn) on a fat-tree k=8 must
// produce
//
//   - bit-identical rates at solver worker counts 1, 2 and 8 (the
//     determinism guarantee: component discovery is sequential, each
//     component is solved by one goroutine, stats merge in order), and
//   - rates agreeing with the from-scratch naive solver within float
//     tolerance (max–min allocations are unique; the naive solver's
//     different operation order makes bit equality too strong).
//
// The whole suite runs under `go test -race` in CI, so the parallel
// fan-out is also race-checked here.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fluid"
	"repro/internal/netmodel"
	"repro/internal/topo"
)

// parityNet is one solver configuration under test: a fat-tree k=8 data
// plane driven directly (AutoReroute off — no control plane, so paths
// stay fixed and every divergence is attributable to the solver).
type parityNet struct {
	name string
	net  *netmodel.Network
	g    *topo.Graph
	fp   *topo.FatTreePaths
}

func newParityNet(t *testing.T, k int, name string, workers int, naive bool) *parityNet {
	t.Helper()
	g, err := topo.FatTree(topo.FatTreeOpts{K: k})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := topo.NewFatTreePaths(g, k)
	if err != nil {
		t.Fatal(err)
	}
	n := netmodel.New(g)
	n.AutoReroute = false
	if naive {
		n.Flows.SetNaive(true)
	}
	n.Flows.SetWorkers(workers)
	return &parityNet{name: name, net: n, g: g, fp: fp}
}

// parityEvent is one step of the shared injection history. Cables and
// flows are identified by position so the event applies to each
// configuration's own graph instance.
type parityEvent struct {
	kind   int // 0 = cable flap, 1 = cable rate, 2 = flow churn, 3 = multi-pod batch, 4 = walk step
	cable  int // index into the eligible-cable list
	down   bool
	rate   core.Rate
	flow   fluid.FlowID
	hash   uint64
	cables []int       // kinds 3/4: cables rate-changed in one coalesced batch
	rates  []core.Rate // kind 4: per-cable walked rate, parallel to cables
}

// eligibleCables lists backbone cables (switch-switch) in deterministic
// order — the FlapRandomLinks candidate set.
func eligibleCables(g *topo.Graph) []*topo.Link {
	var cables []*topo.Link
	for _, l := range g.Links {
		if l.ID > l.Reverse {
			continue
		}
		if g.Nodes[l.From].Kind == topo.Host || g.Nodes[l.To].Kind == topo.Host {
			continue
		}
		cables = append(cables, l)
	}
	return cables
}

func TestParallelSolverParityUnderFailures(t *testing.T) {
	const k = 8
	const nFlows = 256
	const nEvents = 120

	configs := []*parityNet{
		newParityNet(t, k, "workers=1", 1, false),
		newParityNet(t, k, "workers=2", 2, false),
		newParityNet(t, k, "workers=8", 8, false),
		newParityNet(t, k, "naive", 1, true),
	}

	// Seed the same pod-local workload into every configuration: src and
	// dst share a pod, so the fat-tree decomposes into k independent
	// fluid components and multi-pod event batches exercise the parallel
	// fan-out. (Cross-core traffic fuses everything into one component —
	// correctly solved inline; the fluid-level tests cover that shape.)
	rng := rand.New(rand.NewSource(7))
	hosts := configs[0].g.Hosts()
	hostsPerPod := k * k / 4
	type flowSpec struct{ src, dst int }
	specs := make([]flowSpec, 0, nFlows)
	for i := 0; i < nFlows; i++ {
		si := rng.Intn(len(hosts))
		pod := si / hostsPerPod
		di := pod*hostsPerPod + rng.Intn(hostsPerPod)
		for di == si {
			di = pod*hostsPerPod + rng.Intn(hostsPerPod)
		}
		specs = append(specs, flowSpec{src: si, dst: di})
	}
	pathHash := rng.Uint64()
	for _, c := range configs {
		ch := c.g.Hosts()
		c.net.Flows.Defer()
		for i, sp := range specs {
			src, dst := ch[sp.src], ch[sp.dst]
			path, err := c.fp.Path(src.ID, dst.ID, pathHash+uint64(i))
			if err != nil {
				t.Fatal(err)
			}
			c.net.Flows.Add(&fluid.Flow{
				ID: fluid.FlowID(i + 1), Src: src.ID, Dst: dst.ID,
				Demand: core.Gbps, Path: path, State: fluid.Active,
			}, 0)
		}
		c.net.Flows.Resume(0)
	}
	assertParity(t, configs, "initial workload")

	// Shared seeded event history: flaps (SetCableState, the
	// FlapRandomLinks mechanism at netmodel level), capacity changes and
	// flow churn.
	cables := eligibleCables(configs[0].g)
	flapped := map[int]bool{}
	// A fixed seeded cable subset carries a multiplicative capacity
	// random walk across events — the WalkLinkRates capacity-churn
	// workload expressed at netmodel level, with factors clamped the same
	// way ([0.1, 1.0]·base).
	walkSet := make([]int, 8)
	walkFactors := make([]float64, len(walkSet))
	for i := range walkSet {
		walkSet[i] = rng.Intn(len(cables))
		walkFactors[i] = 1
	}
	var events []parityEvent
	for i := 0; i < nEvents; i++ {
		switch r := rng.Float64(); {
		case r < 0.35:
			ci := rng.Intn(len(cables))
			down := !flapped[ci]
			flapped[ci] = down
			events = append(events, parityEvent{kind: 0, cable: ci, down: down})
		case r < 0.5:
			rates := []core.Rate{200 * core.Mbps, 500 * core.Mbps, core.Gbps}
			events = append(events, parityEvent{
				kind: 1, cable: rng.Intn(len(cables)), rate: rates[rng.Intn(len(rates))],
			})
		case r < 0.7:
			events = append(events, parityEvent{
				kind: 2, flow: fluid.FlowID(rng.Intn(nFlows) + 1), hash: rng.Uint64(),
			})
		case r < 0.85:
			// A coalesced storm touching several pods at once — the shape
			// the Connection Manager produces, and the one that fans out.
			batch := make([]int, 6)
			for j := range batch {
				batch[j] = rng.Intn(len(cables))
			}
			events = append(events, parityEvent{
				kind: 3, rate: core.Rate(rng.Intn(800)+200) * core.Mbps, cables: batch,
			})
		default:
			// One walk tick: every walked cable takes a multiplicative
			// step, applied as a single coalesced batch.
			ev := parityEvent{
				kind:   4,
				cables: append([]int(nil), walkSet...),
				rates:  make([]core.Rate, len(walkSet)),
			}
			for j := range walkSet {
				f := walkFactors[j] * (0.75 + rng.Float64()*0.5)
				if f > 1 {
					f = 1
				}
				if f < 0.1 {
					f = 0.1
				}
				walkFactors[j] = f
				ev.rates[j] = core.Rate(f * float64(core.Gbps))
			}
			events = append(events, ev)
		}
	}

	for i, ev := range events {
		for _, c := range configs {
			cc := eligibleCables(c.g)
			cable := cc[ev.cable]
			switch ev.kind {
			case 0:
				c.net.SetCableState(cable.ID, ev.down, 0)
			case 1:
				c.net.SetCableRate(cable.ID, ev.rate, 0)
			case 3:
				c.net.Flows.Defer()
				for _, ci := range ev.cables {
					c.net.SetCableRate(cc[ci].ID, ev.rate, 0)
				}
				c.net.Flows.Resume(0)
			case 4:
				c.net.Flows.Defer()
				for j, ci := range ev.cables {
					c.net.SetCableRate(cc[ci].ID, ev.rates[j], 0)
				}
				c.net.Flows.Resume(0)
			case 2:
				f, ok := c.net.Flows.Flow(ev.flow)
				if !ok {
					t.Fatalf("%s: flow %d missing", c.name, ev.flow)
				}
				src, dst := f.Src, f.Dst
				demand := f.Demand
				c.net.Flows.Remove(ev.flow, 0)
				path, err := c.fp.Path(src, dst, ev.hash)
				if err != nil {
					t.Fatal(err)
				}
				c.net.Flows.Add(&fluid.Flow{
					ID: ev.flow, Src: src, Dst: dst,
					Demand: demand, Path: path, State: fluid.Active,
				}, 0)
			}
		}
		assertParity(t, configs, fmt.Sprintf("event %d (%+v)", i, ev))
	}

	// The parallel configurations must actually have fanned out.
	for _, c := range configs[1:3] {
		if c.net.Flows.Totals().ParallelSolves == 0 {
			t.Errorf("%s: no solve ever used more than one worker", c.name)
		}
	}
}

// assertParity checks workers=2/8 bit-identical with workers=1, and the
// naive oracle within relative tolerance.
func assertParity(t *testing.T, configs []*parityNet, ctx string) {
	t.Helper()
	ref := configs[0]
	for _, c := range configs[1:] {
		naive := c.net.Flows.Naive()
		for _, f := range ref.net.Flows.Flows() {
			o, ok := c.net.Flows.Flow(f.ID)
			if !ok {
				t.Fatalf("%s: %s missing flow %d", ctx, c.name, f.ID)
			}
			if naive {
				if !ratesClose(f.Rate, o.Rate) {
					t.Fatalf("%s: flow %d rate %v (workers=1) vs %v (naive oracle)",
						ctx, f.ID, f.Rate, o.Rate)
				}
				continue
			}
			if math.Float64bits(float64(f.Rate)) != math.Float64bits(float64(o.Rate)) {
				t.Fatalf("%s: flow %d rate %v (workers=1) vs %v (%s) — not bit-identical",
					ctx, f.ID, f.Rate, o.Rate, c.name)
			}
		}
	}
}

func ratesClose(a, b core.Rate) bool {
	diff := math.Abs(float64(a - b))
	return diff <= 1e-3 || diff <= 1e-6*math.Max(math.Abs(float64(a)), math.Abs(float64(b)))
}
