package horse

// Benchmark harness regenerating every evaluation artifact of the paper
// (see DESIGN.md's experiment index and EXPERIMENTS.md for measured
// numbers):
//
//   - BenchmarkFig3Horse / BenchmarkFig3Baseline — Figure 3: wall-clock
//     execution time of the three-TE demonstration suite on Horse vs the
//     packet-level real-time emulator, fat-tree k in {4, 6, 8}.
//   - BenchmarkTopoCreate — the demo's "time required to create the
//     topology" component.
//   - BenchmarkDemoBGPECMP / BenchmarkDemoHedera / BenchmarkDemoSDNECMP —
//     the per-TE aggregate receive rate graphs (Demo-G1..G3).
//   - BenchmarkModeTransitions — Figure 1's DES<->FTI transition cost.
//   - BenchmarkAblation* — design-choice sweeps called out in DESIGN.md.
//
// Benchmarks run with FTI pacing > 1 to keep wall times tractable; the
// pacing factor is constant across compared configurations, so ratios
// (who wins, by how much) are preserved. cmd/fig3 runs the same suite at
// paper-faithful pacing 1.0.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fluid"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// benchConfig is the accelerated clock used throughout the benches.
func benchConfig() Config {
	return Config{
		FTIStep:      Millisecond,
		QuietTimeout: 200 * Millisecond,
		Pacing:       20,
		MaxIdleWall:  3 * time.Second,
	}
}

// teDuration is the virtual duration of each TE experiment in the suite.
const teDuration = 10 * Second

// runTE runs one TE experiment on a fresh topology and returns its result.
func runTE(b *testing.B, k int, te string) *Result {
	b.Helper()
	var (
		g   *Topology
		err error
	)
	exp := NewExperiment(benchConfig())
	switch te {
	case "bgp-ecmp":
		g, err = FatTree(k, BGP())
		if err != nil {
			b.Fatal(err)
		}
		exp.SetTopology(g)
		exp.UseBGP(BGPOptions{ECMP: true})
	case "hedera":
		g, err = FatTree(k, SDN())
		if err != nil {
			b.Fatal(err)
		}
		exp.SetTopology(g)
		exp.UseSDN(AppHedera(5 * Second))
	case "ecmp5":
		g, err = FatTree(k, SDN())
		if err != nil {
			b.Fatal(err)
		}
		exp.SetTopology(g)
		exp.UseSDN(AppECMP5())
	default:
		b.Fatalf("unknown TE %q", te)
	}
	if err := exp.SendPermutation(42, 1*Gbps, 0, 0); err != nil {
		b.Fatal(err)
	}
	res, err := exp.Run(teDuration)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig3Horse regenerates the Horse curve of Figure 3: the wall
// time to execute the full demonstration (all three TE approaches) per
// fat-tree size.
func BenchmarkFig3Horse(b *testing.B) {
	for _, k := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				start := time.Now()
				for _, te := range []string{"bgp-ecmp", "hedera", "ecmp5"} {
					res := runTE(b, k, te)
					if res.SteadyAggregateRx() <= 0 {
						b.Fatalf("%s delivered no traffic", te)
					}
				}
				b.ReportMetric(time.Since(start).Seconds(), "wall-s/suite")
			}
		})
	}
}

// BenchmarkFig3Baseline regenerates the Mininet curve of Figure 3 with
// the packet-level real-time emulator (see the substitution note in
// internal/baseline): per TE run it pays topology setup plus the full
// experiment duration in real time.
func BenchmarkFig3Baseline(b *testing.B) {
	// The baseline has no control plane; its per-TE cost is setup +
	// real-time execution, identical across TE approaches, so emulate
	// the suite as 3 sequential runs.
	for _, k := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				start := time.Now()
				for te := 0; te < 3; te++ {
					g, err := topo.FatTree(topo.FatTreeOpts{K: k})
					if err != nil {
						b.Fatal(err)
					}
					em, err := baseline.New(g, baseline.Config{})
					if err != nil {
						b.Fatal(err)
					}
					flows := baselineFlows(g, 42)
					// The emulator runs 1:1 with the wall clock for the
					// experiment's virtual duration, scaled by the same
					// pacing factor the Horse benches use, keeping the
					// Figure 3 comparison apples-to-apples.
					st := em.Run(flows, time.Duration(float64(teDuration.Duration())/benchConfig().Pacing))
					em.Close()
					if st.DeliveredBytes == 0 {
						b.Fatal("baseline delivered no traffic")
					}
				}
				b.ReportMetric(time.Since(start).Seconds(), "wall-s/suite")
			}
		})
	}
}

// baselineFlows builds the demo's permutation workload for the emulator.
func baselineFlows(g *topo.Graph, seed int64) []baseline.FlowSpec {
	hosts := g.Hosts()
	specs := traffic.Permutation(seed, 1*core.Gbps, 0, 0)(len(hosts))
	out := make([]baseline.FlowSpec, 0, len(specs))
	for _, s := range specs {
		src := hosts[s.SrcHost]
		dst := hosts[s.DstHost]
		out = append(out, baseline.FlowSpec{
			Tuple: core.FiveTuple{Src: src.IP, Dst: dst.IP, Proto: s.Proto,
				SrcPort: s.SrcPort, DstPort: s.DstPort},
			Src: src.ID, Dst: dst.ID, Rate: s.Rate,
		})
	}
	return out
}

// BenchmarkTopoCreate measures topology creation time — the first number
// the demo displays for each run — for Horse and the baseline.
func BenchmarkTopoCreate(b *testing.B) {
	for _, k := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("horse/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := FatTree(k, SDN())
				if err != nil {
					b.Fatal(err)
				}
				if g.Size().Hosts != k*k*k/4 {
					b.Fatal("bad fat-tree")
				}
			}
		})
		b.Run(fmt.Sprintf("baseline/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := topo.FatTree(topo.FatTreeOpts{K: k})
				if err != nil {
					b.Fatal(err)
				}
				em, err := baseline.New(g, baseline.Config{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(em.SetupTime.Seconds(), "setup-s")
				em.Close()
			}
		})
	}
}

// BenchmarkDemoBGPECMP regenerates Demo-G1: aggregate receive rate under
// BGP with (src,dst)-hash ECMP.
func BenchmarkDemoBGPECMP(b *testing.B) {
	for _, k := range []int{4, 6} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runTE(b, k, "bgp-ecmp")
				reportDemoMetrics(b, k, res)
			}
		})
	}
}

// BenchmarkDemoHedera regenerates Demo-G2: aggregate receive rate under
// Hedera with 5-second statistics polling.
func BenchmarkDemoHedera(b *testing.B) {
	for _, k := range []int{4, 6} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runTE(b, k, "hedera")
				reportDemoMetrics(b, k, res)
				if res.StatsQueries == 0 {
					b.Fatal("Hedera never polled statistics")
				}
			}
		})
	}
}

// BenchmarkDemoSDNECMP regenerates Demo-G3: aggregate receive rate under
// proactive 5-tuple ECMP.
func BenchmarkDemoSDNECMP(b *testing.B) {
	for _, k := range []int{4, 6} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runTE(b, k, "ecmp5")
				reportDemoMetrics(b, k, res)
			}
		})
	}
}

func reportDemoMetrics(b *testing.B, k int, res *Result) {
	b.Helper()
	hosts := float64(k * k * k / 4)
	// Normalized aggregate throughput: 1.0 = every host receives its
	// full offered 1 Gbps.
	b.ReportMetric(float64(res.SteadyAggregateRx())/float64(Gbps)/hosts, "norm-rx")
	b.ReportMetric(res.Sim.WallTotal.Seconds(), "wall-s")
	b.ReportMetric(float64(res.Sim.Transitions), "transitions")
}

// BenchmarkModeTransitions exercises the Figure 1 scenario: a two-router
// BGP session driving DES->FTI->DES transitions.
func BenchmarkModeTransitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := TwoRouters()
		if err != nil {
			b.Fatal(err)
		}
		exp := NewExperiment(benchConfig())
		exp.SetTopology(g)
		exp.UseBGP(BGPOptions{})
		if err := exp.AddFlow("h1", "h2", 500*Mbps, 0, 0); err != nil {
			b.Fatal(err)
		}
		res, err := exp.Run(10 * Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Sim.Transitions), "transitions")
		b.ReportMetric(res.Sim.WallTotal.Seconds(), "wall-s")
	}
}

// BenchmarkAblationFTIStep sweeps the FTI increment: smaller steps track
// control plane timing more precisely but add stepping overhead.
func BenchmarkAblationFTIStep(b *testing.B) {
	for _, step := range []Time{100 * Microsecond, Millisecond, 10 * Millisecond, 100 * Millisecond} {
		b.Run(step.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.FTIStep = step
				g, err := TwoRouters()
				if err != nil {
					b.Fatal(err)
				}
				exp := NewExperiment(cfg)
				exp.SetTopology(g)
				exp.UseBGP(BGPOptions{})
				res, err := exp.Run(10 * Second)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Sim.WallTotal.Seconds(), "wall-s")
				b.ReportMetric(float64(res.Sim.Events), "events")
			}
		})
	}
}

// BenchmarkAblationQuietTimeout sweeps the FTI->DES quiet timeout: too
// small flaps modes mid-convergence, too large wastes real time.
func BenchmarkAblationQuietTimeout(b *testing.B) {
	for _, q := range []Time{20 * Millisecond, 100 * Millisecond, 500 * Millisecond, 2 * Second} {
		b.Run(q.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.QuietTimeout = q
				g, err := TwoRouters()
				if err != nil {
					b.Fatal(err)
				}
				exp := NewExperiment(cfg)
				exp.SetTopology(g)
				exp.UseBGP(BGPOptions{})
				res, err := exp.Run(10 * Second)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Sim.Transitions), "transitions")
				b.ReportMetric(res.Sim.WallTotal.Seconds(), "wall-s")
			}
		})
	}
}

// BenchmarkAblationECMPHash contrasts the demo's two hash choices on the
// same reactive control plane: (src,dst) hashing (the BGP demo's
// collision behaviour) vs full 5-tuple hashing.
func BenchmarkAblationECMPHash(b *testing.B) {
	for _, mode := range []struct {
		name   string
		srcDst bool
	}{{"srcdst", true}, {"5tuple", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := FatTree(4, SDN())
				if err != nil {
					b.Fatal(err)
				}
				exp := NewExperiment(benchConfig())
				exp.SetTopology(g)
				exp.UseSDN(AppReactive(mode.srcDst))
				if err := exp.SendPermutation(42, 1*Gbps, 0, 0); err != nil {
					b.Fatal(err)
				}
				res, err := exp.Run(teDuration)
				if err != nil {
					b.Fatal(err)
				}
				reportDemoMetrics(b, 4, res)
			}
		})
	}
}

// BenchmarkSolveScale measures the rate solver at production scale:
// fat-trees from k=16 (1024 hosts, 100k concurrent flows) through k=32
// (8192 hosts, 1M flows) to a k=48 smoke (27648 hosts, 1M flows, reduced
// matrix) under churn — every operation retires one flow and admits a
// rerouted replacement, each triggering a re-solve. The "incremental"
// mode is the persistent-state sorted water-filling solver over the
// struct-of-arrays store; "naive" is the from-scratch progressive-filling
// baseline kept behind fluid.Set.SetNaive for exactly this comparison
// (skipped at the million-flow scales, where a single from-scratch solve
// takes minutes). Two workload shapes:
//
//   - crosscore: random host pairs, so ECMP spreads flows over the whole
//     core and the dirty component spans the entire network;
//   - podlocal: src and dst share a pod, so the network decomposes into
//     k independent components and the dirty-region cut re-solves ~1/k of
//     the flows per change.
//
// cmd/benchjson turns `go test -bench SolveScale -benchmem` output into
// the BENCH_solve.json trajectory file CI archives.
func BenchmarkSolveScale(b *testing.B) {
	for _, sc := range []struct {
		k, nFlows int
		smoke     bool
	}{
		{16, 100_000, false},
		{32, 1_000_000, false},
		{48, 1_000_000, true},
	} {
		b.Run(fmt.Sprintf("k=%d", sc.k), func(b *testing.B) {
			benchSolveScale(b, sc.k, sc.nFlows, sc.smoke)
		})
	}
}

// benchSolveScale runs the churn benches on one fat-tree scale. smoke
// trims the matrix to a single worker count and workload so the largest
// topology stays a build-works/solve-converges check rather than a
// measurement.
func benchSolveScale(b *testing.B, k, nFlows int, smoke bool) {
	g, err := topo.FatTree(topo.FatTreeOpts{K: k})
	if err != nil {
		b.Fatal(err)
	}
	fp, err := topo.NewFatTreePaths(g, k)
	if err != nil {
		b.Fatal(err)
	}
	hosts := g.Hosts()
	hostsPerPod := k * k / 4
	caps := func(l core.LinkID) core.Rate {
		link := g.Link(l)
		if link == nil {
			return 0
		}
		return link.Rate()
	}
	pair := func(rng *rand.Rand, podLocal bool) (src, dst *topo.Node) {
		si := rng.Intn(len(hosts))
		var di int
		if podLocal {
			pod := si / hostsPerPod
			di = pod*hostsPerPod + rng.Intn(hostsPerPod)
			for di == si {
				di = pod*hostsPerPod + rng.Intn(hostsPerPod)
			}
		} else {
			di = rng.Intn(len(hosts))
			for di == si {
				di = rng.Intn(len(hosts))
			}
		}
		return hosts[si], hosts[di]
	}
	// combined: failure/dynamics injections (cable flaps, capacity
	// changes) concurrent with flow churn, pod-local workload, swept over
	// solver worker counts. Each op is one coalesced multi-pod batch —
	// the shape a control plane storm produces — so the dirty region
	// splits into several independent pod components and the sharded
	// solver fans them out. Reported per worker count to expose the
	// parallel scaling (workers=1 is the sequential baseline).
	aggEdge := make([][]*topo.Link, k)
	for _, l := range g.Links {
		if l.ID > l.Reverse {
			continue
		}
		from, to := g.Nodes[l.From], g.Nodes[l.To]
		if from.Layer == topo.LayerAgg && to.Layer == topo.LayerEdge ||
			from.Layer == topo.LayerEdge && to.Layer == topo.LayerAgg {
			aggEdge[from.Pod] = append(aggEdge[from.Pod], l)
		}
	}
	workerCounts := []int{1, 2, 4, 8}
	if smoke {
		workerCounts = []int{8}
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("combined/workers=%d/flows=%d", workers, nFlows), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			s := fluid.NewSet(caps)
			s.SetWorkers(workers)
			comps := topo.NewComponents(g)
			s.SetShardOf(comps.OfLink)
			flowsByPod := make([][]*fluid.Flow, k)
			s.Defer()
			for i := 0; i < nFlows; i++ {
				src, dst := pair(rng, true)
				path, err := fp.Path(src.ID, dst.ID, rng.Uint64())
				if err != nil {
					b.Fatal(err)
				}
				f := &fluid.Flow{
					ID: fluid.FlowID(i + 1), Src: src.ID, Dst: dst.ID,
					Demand: core.Gbps, Path: path, State: fluid.Active,
				}
				flowsByPod[g.Node(src.ID).Pod] = append(flowsByPod[g.Node(src.ID).Pod], f)
				s.Add(f, 0)
			}
			s.Resume(0)
			if s.AggregateRx() <= 0 {
				b.Fatal("combined scenario delivered no traffic")
			}
			const podsPerOp = 8
			churn := make([]int, k)
			visits := make([]int, k)
			var err error
			var components, maxComp int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Defer()
				for j := 0; j < podsPerOp; j++ {
					pod := (i*podsPerOp + j) % k
					links := aggEdge[pod]
					v := visits[pod]
					visits[pod]++
					// Flap: consecutive visits to a pod pair up — one
					// cable goes down, the next visit restores that same
					// cable — cycling through the pod's agg-edge cables
					// (capacities only; liveness-level flaps are the
					// netmodel parity test's job).
					flap := links[(v/2)%len(links)]
					if v%2 == 0 {
						s.SetCapacity(flap.ID, 0, 0)
						s.SetCapacity(flap.Reverse, 0, 0)
					} else {
						s.SetCapacity(flap.ID, core.Gbps, 0)
						s.SetCapacity(flap.Reverse, core.Gbps, 0)
					}
					// Capacity change on a second cable, offset by half
					// the list so it never touches the flapping one.
					rl := links[(v/2+len(links)/2)%len(links)]
					rate := core.Gbps
					if v%3 == 0 {
						rate = 500 * core.Mbps
					}
					s.SetCapacity(rl.ID, rate, 0)
					s.SetCapacity(rl.Reverse, rate, 0)
					// Churn two of the pod's flows.
					pf := flowsByPod[pod]
					for c := 0; c < 2; c++ {
						f := pf[churn[pod]%len(pf)]
						churn[pod]++
						s.Remove(f.ID, 0)
						f.Path, err = fp.AppendPath(f.Path[:0], f.Src, f.Dst, rng.Uint64())
						if err != nil {
							b.Fatal(err)
						}
						f.State = fluid.Active
						s.Add(f, 0)
					}
				}
				s.Resume(0)
				st := s.LastSolve()
				components += st.Components
				if st.MaxComponentFlows > maxComp {
					maxComp = st.MaxComponentFlows
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(components)/float64(b.N), "components/op")
			b.ReportMetric(float64(maxComp), "maxcomp-flows")
			if s.Len() != nFlows {
				b.Fatalf("flow count drifted to %d", s.Len())
			}
		})
	}
	for _, workload := range []struct {
		name     string
		podLocal bool
	}{{"crosscore", false}, {"podlocal", true}} {
		if smoke && !workload.podLocal {
			continue
		}
		for _, mode := range []struct {
			name  string
			naive bool
		}{{"incremental", false}, {"naive", true}} {
			if mode.naive && (smoke || nFlows > 150_000) {
				// A single naive solve is O(rounds × flows × pathlen) from
				// scratch; at 1M flows that is minutes per churn op.
				continue
			}
			b.Run(fmt.Sprintf("%s/%s/flows=%d", workload.name, mode.name, nFlows), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				s := fluid.NewSet(caps)
				s.SetNaive(mode.naive)
				flows := make([]*fluid.Flow, nFlows)
				s.Defer()
				for i := range flows {
					src, dst := pair(rng, workload.podLocal)
					path, err := fp.Path(src.ID, dst.ID, rng.Uint64())
					if err != nil {
						b.Fatal(err)
					}
					flows[i] = &fluid.Flow{
						ID: fluid.FlowID(i + 1), Src: src.ID, Dst: dst.ID,
						Demand: core.Gbps, Path: path, State: fluid.Active,
					}
					s.Add(flows[i], 0)
				}
				s.Resume(0)
				if s.AggregateRx() <= 0 {
					b.Fatal("scale scenario delivered no traffic")
				}
				var compFlows int
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					f := flows[i%nFlows]
					s.Remove(f.ID, 0)
					compFlows += s.LastSolve().Flows
					f.Path, err = fp.AppendPath(f.Path[:0], f.Src, f.Dst, rng.Uint64())
					if err != nil {
						b.Fatal(err)
					}
					f.State = fluid.Active
					s.Add(f, 0)
					compFlows += s.LastSolve().Flows
				}
				b.StopTimer()
				b.ReportMetric(float64(compFlows)/float64(b.N), "compflows/op")
				if s.Len() != nFlows {
					b.Fatalf("flow count drifted to %d", s.Len())
				}
			})
		}
	}
}

// BenchmarkEngineDES measures the raw DES event throughput (no control
// plane): the fast path Horse falls back to between control events.
func BenchmarkEngineDES(b *testing.B) {
	e := sim.New(sim.Config{MaxIdleWall: time.Second})
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			e.After(core.Millisecond, tick)
		} else {
			e.Stop()
		}
	}
	e.Schedule(0, tick)
	b.ResetTimer()
	e.Run(core.MaxTime)
	if count < b.N {
		b.Fatalf("executed %d events, want %d", count, b.N)
	}
}
