package horse

import (
	"testing"
	"time"

	"repro/internal/fluid"
)

// wanConfig: WAN convergence tests need finer rx sampling than the
// default 100ms to resolve latency-dependent convergence times.
func wanConfig() Config {
	cfg := testConfig()
	cfg.Pacing = 20
	cfg.SampleInterval = 5 * Millisecond
	return cfg
}

// runWAN runs the standard WAN scenario (route reflection + latency) on
// the abilene topology at the given delay scale and returns the result.
func runWAN(t *testing.T, delayScale float64, linkLatency bool) *Result {
	t.Helper()
	g, err := WAN("abilene", BGP(), DelayScale(delayScale))
	if err != nil {
		t.Fatal(err)
	}
	exp := NewExperiment(wanConfig())
	exp.SetTopology(g)
	exp.UseBGP(BGPOptions{RouteReflection: true, LinkLatency: linkLatency})
	if err := exp.SendPermutation(7, 500*Mbps, 0, 0); err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(8 * Second)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func allActive(t *testing.T, res *Result, label string) {
	t.Helper()
	for _, f := range res.Flows {
		if f.State != fluid.Active.String() {
			t.Fatalf("%s: flow %v state = %s, want active", label, f.Tuple, f.State)
		}
	}
}

// TestWANRouteReflectionConverges is the baseline WAN scenario check:
// a single-AS measured topology running an RR hierarchy (no full mesh)
// distributes full reachability — every cross-PoP flow goes active —
// and the fluid layer reports the geographic path latency.
func TestWANRouteReflectionConverges(t *testing.T) {
	res := runWAN(t, 1, true)
	allActive(t, res, "wan")
	if res.RouteInstalls == 0 || res.ControlBytes == 0 {
		t.Fatalf("no BGP activity: installs=%d bytes=%d", res.RouteInstalls, res.ControlBytes)
	}
	// Abilene spans the continent: the rate-weighted mean one-way path
	// latency must be in the milliseconds.
	if res.MeanPathLatency < Millisecond {
		t.Fatalf("mean path latency = %v, want >= 1ms", res.MeanPathLatency)
	}
	for _, f := range res.Flows {
		if f.PathLatency <= 0 {
			t.Fatalf("flow %v has zero path latency", f.Tuple)
		}
	}
}

// TestWANZeroLatencyParity pins the acceptance criterion that the
// latency machinery is pay-for-what-you-use: with all link delays at
// zero, a run with LinkLatency enabled is indistinguishable from one
// without it (the delayed-tap constructor falls back to the exact
// pre-latency pipe), and both deliver the same steady allocation.
func TestWANZeroLatencyParity(t *testing.T) {
	with := runWAN(t, 0, true)
	without := runWAN(t, 0, false)
	allActive(t, with, "latency-enabled")
	allActive(t, without, "latency-disabled")
	if with.MeanPathLatency != 0 || without.MeanPathLatency != 0 {
		t.Fatalf("zero-delay runs report latency: %v / %v",
			with.MeanPathLatency, without.MeanPathLatency)
	}
	// Max–min allocations over identical converged topologies are
	// unique: steady rates must agree exactly (both runs converge well
	// before the second half of the run that SteadyAggregateRx means
	// over).
	a, b := with.SteadyAggregateRx(), without.SteadyAggregateRx()
	if a <= 0 || b <= 0 {
		t.Fatalf("steady rx: with=%v without=%v", a, b)
	}
	diff := float64(a-b) / float64(b)
	if diff < -0.01 || diff > 0.01 {
		t.Fatalf("steady rx diverges: with=%v without=%v (%.2f%%)", a, b, 100*diff)
	}
	// Per-flow delivered-byte parity within 5% (wall-time jitter in the
	// sub-100ms convergence window shifts a little volume; the steady
	// allocation itself must match).
	for i := range with.Flows {
		fa, fb := with.Flows[i], without.Flows[i]
		if fa.Tuple != fb.Tuple {
			t.Fatalf("flow order diverged: %v vs %v", fa.Tuple, fb.Tuple)
		}
		if fb.Bytes == 0 {
			t.Fatalf("flow %v delivered nothing without latency", fb.Tuple)
		}
		fdiff := float64(fa.Bytes)/float64(fb.Bytes) - 1
		if fdiff < -0.05 || fdiff > 0.05 {
			t.Fatalf("flow %v bytes diverge: with=%d without=%d (%.2f%%)",
				fa.Tuple, fa.Bytes, fb.Bytes, 100*fdiff)
		}
	}
}

// TestWANConvergenceGrowsWithLatency is the headline acceptance test:
// the same topology, workload and control plane, run at increasing
// propagation delay, must take measurably longer to converge — BGP
// updates ripple at fiber speed, so geography becomes convergence time.
func TestWANConvergenceGrowsWithLatency(t *testing.T) {
	zero := runWAN(t, 0, true)
	slow := runWAN(t, 5, true)
	allActive(t, zero, "zero-latency")
	allActive(t, slow, "scaled-latency")

	convZero, ok := zero.ConvergedAt(0.95)
	if !ok {
		t.Fatal("zero-latency run never converged")
	}
	convSlow, ok := slow.ConvergedAt(0.95)
	if !ok {
		t.Fatal("delayed run never converged")
	}
	// At delay scale 5 the abilene backbone's one-way delays are
	// 10-100ms; convergence needs several such hops beyond the
	// zero-latency baseline. 50ms (10 sample intervals) is a
	// conservative lower bound on the gap — observed is ~150ms.
	if convSlow < convZero+50*Millisecond {
		t.Fatalf("convergence did not grow with latency: zero=%v scaled=%v",
			convZero, convSlow)
	}
	if slow.MeanPathLatency < 5*zero.MeanPathLatency {
		t.Fatalf("path latency did not scale: zero=%v scaled=%v",
			zero.MeanPathLatency, slow.MeanPathLatency)
	}
	// Latency changes when convergence happens, not where it lands.
	a, b := zero.SteadyAggregateRx(), slow.SteadyAggregateRx()
	diff := float64(a-b) / float64(b)
	if diff < -0.02 || diff > 0.02 {
		t.Fatalf("steady rx should not depend on latency: zero=%v scaled=%v", a, b)
	}
}

// TestWANRouteDampeningScenario runs the route-dampening workload
// end to end: a deterministic double flap of one backbone cable with
// aggressive dampening parameters. The first session loss suppresses
// the neighbor's routes, the post-repair re-announcements are parked,
// and the virtual-clock decay releases them — all inside the run.
func TestWANRouteDampeningScenario(t *testing.T) {
	g, err := WAN("abilene", BGP())
	if err != nil {
		t.Fatal(err)
	}
	exp := NewExperiment(wanConfig())
	exp.SetTopology(g)
	exp.UseBGP(BGPOptions{
		RouteReflection: true,
		LinkLatency:     true,
		Dampening: &Dampening{
			Penalty:  1000,
			Suppress: 800, // first flap suppresses
			Reuse:    600,
			HalfLife: 1 * time.Second, // virtual time
		},
	})
	if err := exp.SendPermutation(7, 500*Mbps, 0, 0); err != nil {
		t.Fatal(err)
	}
	for _, inj := range []struct {
		at   Time
		down bool
	}{{4 * Second, true}, {5 * Second, false}, {6 * Second, true}, {7 * Second, false}} {
		var err error
		if inj.down {
			err = exp.At(inj.at).LinkDown("sea", "snv")
		} else {
			err = exp.At(inj.at).LinkUp("sea", "snv")
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := exp.Run(14 * Second)
	if err != nil {
		t.Fatal(err)
	}
	var suppressed, reused uint64
	for _, r := range g.Routers() {
		if sp := exp.Manager().Speaker(r.ID); sp != nil {
			suppressed += sp.Stats.RoutesSuppressed.Load()
			reused += sp.Stats.RoutesReused.Load()
		}
	}
	if suppressed == 0 {
		t.Fatal("no announcements were suppressed by dampening")
	}
	if reused == 0 {
		t.Fatal("no suppressed routes were reused after penalty decay")
	}
	// The topology healed and dampening released its routes: traffic
	// must be back to full allocation at the end.
	tail := res.AggregateRx.MeanBetween(12*Second, 14*Second)
	steady := res.AggregateRx.MeanBetween(2*Second, 4*Second)
	if steady <= 0 || tail < 0.9*steady {
		t.Fatalf("post-dampening tail rx %v, want >= 90%% of pre-flap %v",
			Rate(tail), Rate(steady))
	}
	if res.Injections != 4 {
		t.Fatalf("injections = %d, want 4", res.Injections)
	}
}
